package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cif"
	"repro/internal/core"
	"repro/internal/deck"
	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/workload"
)

// cmosCIF renders a small CMOS inverter-array chip as CIF text (the
// service's upload format).
func cmosCIF(t *testing.T, rows, cols int) (string, *tech.Technology) {
	t.Helper()
	tc := tech.CMOS()
	chip := workload.NewCMOSChip(tc, "chip", rows, cols)
	text, err := cif.Write(chip.Design, tc)
	if err != nil {
		t.Fatal(err)
	}
	return text, tc
}

// breakEdits is the BreakAccidentalTransistor(1) geometry as an edit
// script: a poly wire straight across column 1's n-diffusion output wire
// in row 0 (workload/cmos.go documents the coordinates).
func breakEdits() []layout.Edit {
	x := int64(1) * workload.CMOSPitchX
	return []layout.Edit{{
		Op: layout.OpAddWire, Symbol: "chip", Layer: tech.CMOSPoly,
		Width: 200, Path: []int64{x + 400, -400, x + 400, 400},
	}}
}

func revertEdits() []layout.Edit {
	return []layout.Edit{{Op: layout.OpDeleteElement, Symbol: "chip", Index: -1}}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, NewClient(ts.URL)
}

// TestSessionLifecycleParity drives the scripted session of the CI smoke
// job through the HTTP API — clean, violating, clean again — and asserts
// fingerprint parity at every step against an offline Engine replaying
// the identical edit script on the identical CIF.
func TestSessionLifecycleParity(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	_, c := newTestServer(t, Config{Debounce: time.Hour})

	created, err := c.SessionCreate(context.Background(), CreateRequest{Name: "smoke", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	if !created.Report.Clean {
		t.Fatalf("initial report not clean: %+v", created.Report.Violations)
	}

	// The offline oracle: same CIF, same design name, same edit script.
	tcOff := tech.CMOS()
	dOff, err := cif.Parse(text, tcOff, "smoke")
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(tcOff, core.Options{})
	repOff, err := eng.Check(dOff)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := created.Report.Fingerprint, core.FingerprintDigest(repOff); got != want {
		t.Fatalf("initial fingerprint mismatch: served %s offline %s", got, want)
	}
	cleanFP := created.Report.Fingerprint

	// Break: the accidental transistor must appear, identically on both
	// sides.
	if _, err := c.SessionEdit(context.Background(), created.ID, breakEdits()); err != nil {
		t.Fatal(err)
	}
	rep, err := c.SessionReport(context.Background(), created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean {
		t.Fatal("report clean after accidental-transistor edit")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Rule == "DEV.ACCIDENTAL" {
			found = true
		}
	}
	if !found {
		t.Fatalf("DEV.ACCIDENTAL not reported: %+v", rep.Violations)
	}
	if _, err := layout.ApplyEdits(dOff, tcOff, breakEdits()); err != nil {
		t.Fatal(err)
	}
	repOff, err = eng.Recheck(dOff)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Fingerprint, core.FingerprintDigest(repOff); got != want {
		t.Fatalf("broken fingerprint mismatch: served %s offline %s", got, want)
	}

	// Revert: clean again, and byte-identical to the initial state.
	if _, err := c.SessionEdit(context.Background(), created.ID, revertEdits()); err != nil {
		t.Fatal(err)
	}
	rep, err = c.SessionReport(context.Background(), created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("report not clean after revert: %+v", rep.Violations)
	}
	if rep.Fingerprint != cleanFP {
		t.Fatalf("revert fingerprint %s != initial %s", rep.Fingerprint, cleanFP)
	}
	if _, err := layout.ApplyEdits(dOff, tcOff, revertEdits()); err != nil {
		t.Fatal(err)
	}
	repOff, err = eng.Recheck(dOff)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Fingerprint, core.FingerprintDigest(repOff); got != want {
		t.Fatalf("reverted fingerprint mismatch: served %s offline %s", got, want)
	}

	if err := c.SessionDelete(context.Background(), created.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionReport(context.Background(), created.ID); err == nil {
		t.Fatal("report on deleted session succeeded")
	}
}

// TestDebounceBatching locks the acceptance bound: a 10-edit burst costs
// at most 2 rechecks, and the report request observes the post-batch
// state.
func TestDebounceBatching(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	// A huge window means the timer can never fire mid-test: the report
	// request is the only flush trigger, so the burst costs exactly one
	// recheck.
	_, c := newTestServer(t, Config{Debounce: time.Hour})

	created, err := c.SessionCreate(context.Background(), CreateRequest{Name: "burst", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	// Ten single-edit batches: a forward/back jitter on the chip's last
	// element (the well trunk), ending where it started.
	for i := 0; i < 10; i++ {
		dy := int64(100)
		if i%2 == 1 {
			dy = -100
		}
		if _, err := c.SessionEdit(context.Background(), created.ID, []layout.Edit{{
			Op: layout.OpMoveElement, Symbol: "chip", Index: -1, DY: dy,
		}}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := c.SessionReport(context.Background(), created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("burst end state not clean: %+v", rep.Violations)
	}
	st, err := c.SessionStats(context.Background(), created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Session.EditsApplied != 10 || st.Session.EditBatches != 10 {
		t.Fatalf("edit counters: %+v", st.Session)
	}
	// 1 initial check + at most 2 for the burst; with the timer parked it
	// is exactly 1.
	if burst := st.Session.Rechecks - 1; burst > 2 {
		t.Fatalf("10-edit burst cost %d rechecks (want <= 2): %+v", burst, st.Session)
	}
	if st.Session.ReportFlushes != 1 {
		t.Fatalf("report flushes = %d", st.Session.ReportFlushes)
	}
	if st.Dirty {
		t.Fatal("session still dirty after report")
	}
}

// TestDebounceTimerFlush proves the background path: with a short window
// and no report request, the timer runs the recheck on its own.
func TestDebounceTimerFlush(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	_, c := newTestServer(t, Config{Debounce: 10 * time.Millisecond})

	created, err := c.SessionCreate(context.Background(), CreateRequest{Name: "timer", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionEdit(context.Background(), created.ID, []layout.Edit{{
		Op: layout.OpMoveElement, Symbol: "chip", Index: -1, DY: 100,
	}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.SessionStats(context.Background(), created.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Dirty && st.Session.DebounceFlushes >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("debounce timer never flushed: %+v", st.Session)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLRUEviction(t *testing.T) {
	text, _ := cmosCIF(t, 1, 1)
	_, c := newTestServer(t, Config{MaxSessions: 2, Debounce: time.Hour})

	var ids []string
	for _, name := range []string{"a", "b", "c"} {
		created, err := c.SessionCreate(context.Background(), CreateRequest{Name: name, CIF: text, Tech: "cmos"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, created.ID)
		// Distinct lastUsed stamps even on a coarse clock.
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := c.SessionReport(context.Background(), ids[0]); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("oldest session not evicted: %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := c.SessionReport(context.Background(), id); err != nil {
			t.Fatalf("session %s evicted: %v", id, err)
		}
	}
	infos, err := c.SessionList(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("listing has %d sessions", len(infos))
	}
}

func TestIdleEviction(t *testing.T) {
	text, _ := cmosCIF(t, 1, 1)
	srv, c := newTestServer(t, Config{IdleTTL: time.Minute, Debounce: time.Hour})

	created, err := c.SessionCreate(context.Background(), CreateRequest{Name: "idle", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	if n := srv.SweepIdle(time.Now()); n != 0 {
		t.Fatalf("fresh session swept (%d)", n)
	}
	if n := srv.SweepIdle(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("idle sweep removed %d sessions", n)
	}
	if _, err := c.SessionReport(context.Background(), created.ID); err == nil {
		t.Fatal("idle session still reachable")
	}
}

// TestCreateFromDeck exercises the deck-upload path: a session created
// from rule-deck source text instead of a registered technology name must
// check identically to one created from the registry (the CMOS process is
// deck-defined, so rendering its deck back out is an exact round trip).
func TestCreateFromDeck(t *testing.T) {
	text, tc := cmosCIF(t, 1, 2)
	deckSrc := deck.Write(tech.ToDeck(tc))
	_, c := newTestServer(t, Config{Debounce: time.Hour})

	byName, err := c.SessionCreate(context.Background(), CreateRequest{Name: "reg", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	byDeck, err := c.SessionCreate(context.Background(), CreateRequest{Name: "reg", DesignName: "reg", CIF: text, Deck: deckSrc})
	if err != nil {
		t.Fatal(err)
	}
	if !byDeck.Report.Clean {
		t.Fatalf("deck-created session not clean: %+v", byDeck.Report.Violations)
	}
	if byDeck.Report.Fingerprint != byName.Report.Fingerprint {
		t.Fatalf("deck vs registry fingerprint mismatch: %s vs %s",
			byDeck.Report.Fingerprint, byName.Report.Fingerprint)
	}
}

func TestCreateErrors(t *testing.T) {
	_, c := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  CreateRequest
	}{
		{"empty cif", CreateRequest{Tech: "cmos"}},
		{"bad tech", CreateRequest{CIF: "E", Tech: "unobtanium"}},
		{"bad cif", CreateRequest{CIF: "DS 1; L ZZ; DF; E", Tech: "nmos"}},
		{"bad metric", CreateRequest{CIF: "E", Tech: "nmos", Metric: "manhattan"}},
		{"bad deck", CreateRequest{CIF: "E", Deck: "tech garbage {"}},
	}
	for _, cse := range cases {
		if _, err := c.SessionCreate(context.Background(), cse.req); err == nil {
			t.Errorf("%s: create succeeded", cse.name)
		}
	}
}

func TestEditErrorKeepsSessionUsable(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	_, c := newTestServer(t, Config{Debounce: time.Hour})
	created, err := c.SessionCreate(context.Background(), CreateRequest{Name: "err", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionEdit(context.Background(), created.ID, []layout.Edit{{Op: "explode", Symbol: "chip"}}); err == nil {
		t.Fatal("bad edit accepted")
	}
	rep, err := c.SessionReport(context.Background(), created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("session corrupted by rejected edit: %+v", rep.Violations)
	}
	if rep.Fingerprint != created.Report.Fingerprint {
		t.Fatal("rejected edit changed the design state")
	}
}

// TestWidthClassRoundTrip drives a width violation through the daemon: an
// nMOS chip carrying the ground-truth too-narrow wire is uploaded, the
// wire report must carry the per-class summary with the width class, and
// the served fingerprint must equal an offline check of the same CIF.
func TestWidthClassRoundTrip(t *testing.T) {
	tcUp := tech.NMOS()
	chip := workload.NewChip(tcUp, "narrow", 2, 2)
	chip.BreakRuleWidth(0)
	text, err := cif.Write(chip.Design, tcUp)
	if err != nil {
		t.Fatal(err)
	}

	_, c := newTestServer(t, Config{Debounce: time.Hour})
	created, err := c.SessionCreate(context.Background(), CreateRequest{Name: "narrow", CIF: text, Tech: "nmos"})
	if err != nil {
		t.Fatal(err)
	}
	rep := created.Report
	if rep.Clean {
		t.Fatal("narrow-wire chip reported clean")
	}
	// W.ND (per-element) and WIDTH.ND (merged-region kernel) both land in
	// the width class; the floating wire adds one net-class complaint.
	if rep.Classes["width"] != 2 {
		t.Fatalf("classes = %v, want width=2", rep.Classes)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Rule == "WIDTH.ND" {
			found = true
		}
	}
	if !found {
		t.Fatalf("WIDTH.ND missing from wire report: %+v", rep.Violations)
	}

	tcOff := tech.NMOS()
	dOff, err := cif.Parse(text, tcOff, "narrow")
	if err != nil {
		t.Fatal(err)
	}
	repOff, err := core.Check(dOff, tcOff, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Fingerprint, core.FingerprintDigest(repOff); got != want {
		t.Fatalf("served fingerprint %s != offline %s", got, want)
	}
}
