// Package process implements the paper's 2-D process model for design rule
// checking (Figures 13 and 14, Equation 1): the exposure at a point is the
// convolution of a Gaussian kernel — representing exposure and etching
// variation — with the binary mask function, clipped at the photoresist
// threshold:
//
//	I(p) = ∬ A·exp(-r²/2σ²) · M(x,y) dx dy            (Eq. 1)
//
// For rectangle masks the integral has the closed-form solution in error
// functions the paper points out, so the model is exact and fast; a
// brute-force numeric convolution is provided as a validation oracle.
//
// On top of the exposure function the package builds the paper's checks:
//
//   - printed-edge positions and proximity-effect expansion (Figure 13:
//     Euclidean, orthogonal and proximity expand disagree, and the
//     proximity expansion of an edge depends on its neighbours — "bias
//     effects in fact are not unary"),
//   - the line-of-closest-approach spacing check with mask misalignment
//     for different-layer pairs,
//   - the relational end-retreat rule of Figure 14: the printed end of a
//     wire retreats further the narrower the wire, so the required gate
//     overlap is a function of the poly width.
package process

import (
	"math"

	"repro/internal/geom"
)

// Model is a Gaussian exposure model. Exposure is normalized so that a
// point deep inside a large mask opening sees 1.0 and a point exactly on a
// long straight edge sees 0.5. Threshold is the clip level of the resist:
// with Threshold = 0.5 long straight edges print exactly where drawn;
// lower thresholds over-expose (features grow), higher under-expose.
type Model struct {
	Sigma     float64 // Gaussian radius in centimicrons
	Threshold float64 // resist clip level in normalized exposure units
}

// DefaultModel returns the model used by the experiments: σ of half the
// nMOS λ and a print-at-drawn-edge threshold.
func DefaultModel() Model {
	return Model{Sigma: 125, Threshold: 0.5}
}

// erfStep computes the 1-D edge integral term erf((hi-p)/(σ√2)) -
// erf((lo-p)/(σ√2)); the product of two of these, divided by 4, is the
// exposure contribution of a rectangle.
func (m Model) erfStep(lo, hi, p float64) float64 {
	s := m.Sigma * math.Sqrt2
	return math.Erf((hi-p)/s) - math.Erf((lo-p)/s)
}

// ExposureAt evaluates Eq. 1 at point p for a mask given as a region. The
// canonical rect decomposition is disjoint, so contributions add exactly.
func (m Model) ExposureAt(mask geom.Region, p geom.FPoint) float64 {
	var e float64
	for _, r := range mask.Rects() {
		e += 0.25 *
			m.erfStep(float64(r.X1), float64(r.X2), p.X) *
			m.erfStep(float64(r.Y1), float64(r.Y2), p.Y)
	}
	return e
}

// ExposureAtNumeric validates ExposureAt by direct 2-D convolution with
// grid spacing step (centimicrons). It is O((extent/step)²) and intended
// for tests only.
func (m Model) ExposureAtNumeric(mask geom.Region, p geom.FPoint, step float64) float64 {
	// Integrate over the mask ± 6σ window around p.
	w := 6 * m.Sigma
	norm := 1 / (2 * math.Pi * m.Sigma * m.Sigma)
	var sum float64
	for x := p.X - w; x <= p.X+w; x += step {
		for y := p.Y - w; y <= p.Y+w; y += step {
			if !mask.ContainsPoint(geom.Pt(int64(math.Floor(x)), int64(math.Floor(y)))) {
				continue
			}
			dx, dy := x-p.X, y-p.Y
			sum += math.Exp(-(dx*dx+dy*dy)/(2*m.Sigma*m.Sigma)) * step * step
		}
	}
	return sum * norm
}

// Prints reports whether the resist at p clears the threshold (the point
// is part of the printed image).
func (m Model) Prints(mask geom.Region, p geom.FPoint) bool {
	return m.ExposureAt(mask, p) >= m.Threshold
}

// EdgePosition finds the printed edge along the ray from origin in
// direction dir (unit vector): the distance t at which exposure crosses
// the threshold, searched by bisection over [0, limit]. It returns NaN if
// the exposure does not cross in the interval.
func (m Model) EdgePosition(mask geom.Region, origin, dir geom.FPoint, limit float64) float64 {
	at := func(t float64) float64 {
		return m.ExposureAt(mask, geom.FPoint{X: origin.X + dir.X*t, Y: origin.Y + dir.Y*t})
	}
	lo, hi := 0.0, limit
	fl, fh := at(lo), at(hi)
	if (fl >= m.Threshold) == (fh >= m.Threshold) {
		return math.NaN()
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if (at(mid) >= m.Threshold) == (fl >= m.Threshold) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// IsolatedEdgeShift returns how far a long straight edge moves under the
// model: positive = outward growth (over-exposure), negative = shrink.
// Closed form: the printed edge sits where 0.5(1-erf(d/(σ√2))) = T.
func (m Model) IsolatedEdgeShift() float64 {
	return math.Erfinv(1-2*m.Threshold) * m.Sigma * math.Sqrt2
}

// PrintedGap returns the printed spacing between two mask regions along
// the line of closest approach: the length of the sub-threshold interval
// between their printed edges. A non-positive value means the images
// bridge — the spacing failure the rule exists to prevent. The search uses
// the combined exposure of both masks, which is what makes the proximity
// effect appear: each mask's tail exposure pushes the other's printed edge
// outward.
func (m Model) PrintedGap(a, b geom.Region) float64 {
	dir, from, to, dist := geom.LineOfClosestApproach(a, b)
	if dist == 0 {
		return 0
	}
	combined := a.Union(b)
	origin := geom.FPoint{X: float64(from.X), Y: float64(from.Y)}
	// Find the printed edge of the combined image walking from a's
	// boundary toward b, and symmetrically from b toward a.
	t1 := m.EdgePosition(combined, origin, dir, dist/2)
	originB := geom.FPoint{X: float64(to.X), Y: float64(to.Y)}
	back := geom.FPoint{X: -dir.X, Y: -dir.Y}
	t2 := m.EdgePosition(combined, originB, back, dist/2)
	if math.IsNaN(t1) || math.IsNaN(t2) {
		// No crossing: either the whole gap prints (bridge) or none of it
		// does. Decide by the midpoint.
		mid := geom.FPoint{
			X: (float64(from.X) + float64(to.X)) / 2,
			Y: (float64(from.Y) + float64(to.Y)) / 2,
		}
		if m.Prints(combined, mid) {
			return 0
		}
		return dist
	}
	return dist - t1 - t2
}

// SpacingOK implements the paper's process-model spacing check: translate
// one element along the line of closest approach by the worst-case mask
// misalignment (zero for same-layer pairs, where only bias effects apply),
// then require the printed images to keep a positive gap of at least
// minPrintedGap.
func (m Model) SpacingOK(a, b geom.Region, misalign float64, minPrintedGap float64) bool {
	if misalign > 0 {
		dir, _, _, dist := geom.LineOfClosestApproach(a, b)
		if dist == 0 {
			return false
		}
		shift := misalign
		if shift > dist {
			shift = dist
		}
		b = b.Translate(geom.Pt(int64(math.Round(-dir.X*shift)), int64(math.Round(-dir.Y*shift))))
	}
	return m.PrintedGap(a, b) >= minPrintedGap
}

// EndRetreat returns how far the printed end of a long wire of the given
// width retreats behind the drawn end (Figure 14). Wide wires retreat by
// -IsolatedEdgeShift; narrow wires retreat more because the side edges rob
// exposure from the end region — the relational effect.
func (m Model) EndRetreat(width int64) float64 {
	const length = 40000 // long enough that the far end is irrelevant
	wire := geom.FromRectR(geom.R(0, -width/2, length, width-width/2))
	// Start the search safely outside the drawn end (exposure ≈ 0) and
	// walk inward along the axis until the resist threshold is crossed;
	// the crossing relative to the drawn end is the retreat (negative
	// values mean the end grows under over-exposure).
	pad := 8 * m.Sigma
	start := geom.FPoint{X: length + pad, Y: 0}
	in := geom.FPoint{X: -1, Y: 0}
	t := m.EdgePosition(wire, start, in, float64(length)/2+pad)
	if math.IsNaN(t) {
		return math.Inf(1) // the whole wire fails to print
	}
	return t - pad
}

// RequiredGateOverlap returns the Figure 14 relational rule: the poly gate
// must extend past the channel by the end retreat of a wire of that width
// plus the safety margin.
func (m Model) RequiredGateOverlap(polyWidth int64, margin float64) float64 {
	r := m.EndRetreat(polyWidth)
	if math.IsInf(r, 1) {
		return math.Inf(1)
	}
	if r < 0 {
		r = 0
	}
	return r + margin
}

// RelationalGateCheck applies the relational rule to a drawn overlap.
func (m Model) RelationalGateCheck(polyWidth, drawnOverlap int64, margin float64) bool {
	return float64(drawnOverlap) >= m.RequiredGateOverlap(polyWidth, margin)
}
