package geom

import "math"

// RegionDist returns the minimum Euclidean distance between two regions
// (0 if they touch or overlap) along with a realizing pair of points — the
// paper's "line of closest approach", along which the 2-D process model
// translates one element and evaluates the exposure function.
func RegionDist(a, b Region) (float64, Point, Point) {
	ra, rb := a.Rects(), b.Rects()
	best := math.Inf(1)
	var pa, pb Point
	for _, qa := range ra {
		for _, qb := range rb {
			// Cheap lower bound before the exact computation.
			if lb := float64(qa.OrthogonalDist(qb)); lb >= best {
				continue
			}
			d := qa.EuclideanDist(qb)
			if d < best {
				best = d
				pa, pb = qa.ClosestPoints(qb)
				if best == 0 {
					return 0, pa, pb
				}
			}
		}
	}
	return best, pa, pb
}

// RegionOrthoDist returns the minimum orthogonal (L∞) separation between
// two regions: the smallest s such that dilating a by s overlaps b. This is
// the distance measured by traditional expand-check-overlap spacing.
func RegionOrthoDist(a, b Region) int64 {
	var best int64 = math.MaxInt64
	for _, qa := range a.Rects() {
		for _, qb := range b.Rects() {
			if d := qa.OrthogonalDist(qb); d < best {
				best = d
				if best == 0 {
					return 0
				}
			}
		}
	}
	return best
}

// LineOfClosestApproach returns the unit direction from a toward b along
// the closest-approach segment, the two endpoints, and the distance. For
// overlapping regions the direction is zero.
func LineOfClosestApproach(a, b Region) (dir FPoint, from, to Point, dist float64) {
	dist, from, to = RegionDist(a, b)
	if dist == 0 {
		return FPoint{}, from, to, 0
	}
	dx := float64(to.X - from.X)
	dy := float64(to.Y - from.Y)
	n := math.Hypot(dx, dy)
	return FPoint{dx / n, dy / n}, from, to, dist
}
