package eval

import (
	"testing"

	"repro/internal/tech"
	"repro/internal/workload"
)

func TestAllPathologies(t *testing.T) {
	for _, p := range workload.AllPathologies() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res, err := RunPathology(p)
			if err != nil {
				t.Fatal(err)
			}
			if !res.DICOk {
				t.Errorf("DIC behaviour wrong (%s): want rules %v, got %v",
					p.Figure, p.ExpectDICRules, res.DICRules)
			}
			if !res.FlatAsDoc {
				t.Errorf("baseline behaviour wrong (%s): want %v (misses=%v), got %v",
					p.Figure, p.ExpectFlatRules, p.FlatMisses, res.FlatRules)
			}
		})
	}
}

func TestE1SmallChip(t *testing.T) {
	res, err := RunE1(tech.NMOS(), 3, 4, 7, 42)
	if err != nil {
		t.Fatal(err)
	}
	// The DIC must catch every injected error with no false reports.
	if res.DIC.Missed != 0 {
		t.Errorf("DIC missed %d injections: %+v", res.DIC.Missed, res.DIC)
	}
	if res.DIC.False != 0 {
		t.Errorf("DIC produced %d false errors: %+v", res.DIC.False, res.DIC)
	}
	// The baseline must miss the device/net-level errors and produce false
	// errors (one butting contact per cell at minimum).
	if res.Flat.Missed == 0 {
		t.Errorf("baseline unexpectedly caught everything: %+v", res.Flat)
	}
	if res.Flat.False == 0 {
		t.Errorf("baseline produced no false errors: %+v", res.Flat)
	}
	if res.Flat.Effectiveness() >= res.DIC.Effectiveness() {
		t.Errorf("baseline effectiveness %v >= DIC %v", res.Flat.Effectiveness(), res.DIC.Effectiveness())
	}
}
