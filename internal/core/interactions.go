package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// interactionChecker is the read-only context shared by every interaction
// worker: the extraction, the technology, the device-relation indexes, and
// the options. It is built once per run and never mutated afterwards, so
// pair() may be called from many goroutines concurrently as long as each
// call gets its own tally.
type interactionChecker struct {
	c  *checker
	ex *netlist.Extraction
	tc *tech.Technology

	polyID, diffID, isoID    tech.LayerID
	hasPoly, hasDiff, hasIso bool

	// Terminal-net sets per device: an element is "related" to a device
	// when it shares a net with one of the device's terminals (the paper:
	// "the subcases depend on whether or not the elements are related").
	devNets []map[netlist.NetID]bool
	netDevs map[netlist.NetID]map[int]bool
}

// interactionTally is one worker's private share of the stage-5 results.
// Tallies merge in strip order, which reproduces the serial sweep's
// violation order exactly.
type interactionTally struct {
	violations []Violation
	checks     int

	candidates, checked                                        int
	skippedNoRule, skippedSameNet, skippedRelated, skippedConn int
	downgrades                                                 int
}

func newInteractionChecker(c *checker, ex *netlist.Extraction) *interactionChecker {
	ic := &interactionChecker{c: c, ex: ex, tc: c.tech}
	ic.polyID, ic.hasPoly = ic.tc.LayerByName(tech.NMOSPoly)
	ic.diffID, ic.hasDiff = ic.tc.LayerByName(tech.NMOSDiff)
	ic.isoID, ic.hasIso = ic.tc.LayerByName(tech.BipIso)

	ic.devNets = make([]map[netlist.NetID]bool, len(ex.Netlist.Devices))
	ic.netDevs = make(map[netlist.NetID]map[int]bool)
	for di := range ex.Netlist.Devices {
		set := make(map[netlist.NetID]bool, len(ex.Netlist.Devices[di].TerminalNets))
		for _, nid := range ex.Netlist.Devices[di].TerminalNets {
			set[nid] = true
			if ic.netDevs[nid] == nil {
				ic.netDevs[nid] = make(map[int]bool)
			}
			ic.netDevs[nid][di] = true
		}
		ic.devNets[di] = set
	}
	return ic
}

// related reports whether the two items are related through a device.
func (ic *interactionChecker) related(a, b *netlist.ConnItem) bool {
	if a.Dev >= 0 && a.Dev == b.Dev {
		return true
	}
	if a.Dev >= 0 && b.Net != netlist.NoNet && ic.devNets[a.Dev][b.Net] {
		return true
	}
	if b.Dev >= 0 && a.Net != netlist.NoNet && ic.devNets[b.Dev][a.Net] {
		return true
	}
	// Two interconnect elements whose nets meet at a common device are
	// related through it — e.g. the source and drain feed wires of one
	// transistor, whose separation is the channel, not a spacing rule.
	if a.Net != netlist.NoNet && b.Net != netlist.NoNet {
		da, db := ic.netDevs[a.Net], ic.netDevs[b.Net]
		if len(da) > len(db) {
			da, db = db, da
		}
		for di := range da {
			if db[di] {
				return true
			}
		}
	}
	return false
}

// pair adjudicates one candidate interaction from the sweep, accumulating
// into the worker-local tally.
func (ic *interactionChecker) pair(p geom.Pair, t *interactionTally) {
	c, ex, tc := ic.c, ic.ex, ic.tc
	t.candidates++
	a := &ex.Items[p.A.ID]
	b := &ex.Items[p.B.ID]
	sameDevice := a.Dev >= 0 && a.Dev == b.Dev

	// Accidental transistor (Figure 8): poly over diffusion outside a
	// single declared device. Implicit devices are not allowed.
	if ic.hasPoly && ic.hasDiff && !sameDevice &&
		((a.Layer == ic.polyID && b.Layer == ic.diffID) || (a.Layer == ic.diffID && b.Layer == ic.polyID)) {
		if a.Bounds.Overlaps(b.Bounds) {
			t.checks++
			if ov := a.Reg.Intersect(b.Reg); !ov.Empty() {
				t.violations = append(t.violations, Violation{
					Rule:     "DEV.ACCIDENTAL",
					Severity: Error,
					Detail:   "poly crosses diffusion outside a transistor symbol (implicit devices are not allowed)",
					Where:    ov.Bounds(),
					Path:     a.Path,
					Nets:     c.netNames(ex, a.Net, b.Net),
				})
				return // the spacing cell would double-report this overlap
			}
		}
	}

	rule := tc.Spacing(a.Layer, b.Layer)
	if rule.DiffNet == 0 && rule.SameNet == 0 {
		t.skippedNoRule++
		return
	}
	// Figure 5b: a resistor keeps its spacing checks even against
	// related or same-net elements — a short across the body changes
	// the circuit. Its own internal geometry (same device) is stage
	// 2's business, not an interaction.
	resException := !sameDevice &&
		(c.devKeepsSameNetSpacing(ex, a.Dev) || c.devKeepsSameNetSpacing(ex, b.Dev))
	isRelated := ic.related(a, b)
	if !c.opts.NoExemptions {
		if rule.ExemptRelated && isRelated && !resException {
			t.skippedRelated++
			return
		}
	}
	if sameDevice {
		// Device-internal geometry is stage 2's business even under
		// the ablation; measuring a device against itself is
		// meaningless in any model.
		t.skippedRelated++
		return
	}

	sameNet := a.Net != netlist.NoNet && a.Net == b.Net
	need := rule.DiffNet
	if sameNet && !c.opts.NoExemptions {
		need = rule.SameNet
		if need == 0 && resException {
			need = rule.DiffNet
		}
		if need == 0 {
			t.skippedSameNet++
			return
		}
	}
	if need == 0 {
		t.skippedNoRule++
		return
	}

	// Figure 6b: devices that may legally touch isolation are exempt
	// from the base-isolation spacing cell.
	if ic.hasIso && (a.Layer == ic.isoID || b.Layer == ic.isoID) {
		other := a
		if a.Layer == ic.isoID {
			other = b
		}
		if c.devMayTouchIsolation(ex, other.Dev) {
			t.skippedRelated++
			return
		}
	}

	// Same-layer touching pairs were adjudicated by the connection
	// stage (legal skeletal connection or CONN.ILLEGAL); measuring
	// them again would double-report.
	if a.Layer == b.Layer && a.Reg.Overlaps(b.Reg) {
		t.skippedConn++
		return
	}

	t.checked++
	t.checks++
	var dist float64
	if c.opts.Metric == Orthogonal {
		dist = float64(geom.RegionOrthoDist(a.Reg, b.Reg))
	} else {
		d, _, _ := geom.RegionDist(a.Reg, b.Reg)
		dist = d
	}
	// A touching, related element under the resistor exception is the
	// legitimate connection into the resistor terminal, not a short.
	if resException && isRelated && dist == 0 {
		t.skippedRelated++
		return
	}
	if dist < float64(need) {
		severity := Error
		extra := ""
		if m := c.opts.ProcessSpacing; m != nil && dist > 0 {
			// Second opinion from the Eq. 1 process model: translate
			// by worst-case misalignment when the layers differ, then
			// require the printed images to keep the margin.
			mis := 0.0
			if a.Layer != b.Layer {
				mis = c.opts.Misalign
				if mis == 0 && tc.Lambda > 0 {
					mis = float64(tc.Lambda) / 2
				}
			}
			if m.SpacingOK(a.Reg, b.Reg, mis, c.opts.ProcessMargin) {
				severity = Warning
				extra = " (process model predicts a safe printed gap; downgraded)"
				t.downgrades++
			}
		}
		sub := "diff"
		if sameNet {
			sub = "same"
		}
		la, lb := tc.Layer(a.Layer).CIF, tc.Layer(b.Layer).CIF
		if la > lb {
			la, lb = lb, la
		}
		t.violations = append(t.violations, Violation{
			Rule:     fmt.Sprintf("S.%s.%s.%s", la, lb, sub),
			Severity: severity,
			Detail: fmt.Sprintf("spacing %.0f < %d between %s and %s (%s net)%s",
				dist, need, tc.Layer(a.Layer).Name, tc.Layer(b.Layer).Name, sub, extra),
			Where: a.Bounds.Union(b.Bounds).Intersect(a.Bounds.Expand(need).Union(b.Bounds.Expand(need))),
			Path:  a.Path,
			Layer: a.Layer,
			Nets:  c.netNames(ex, a.Net, b.Net),
		})
	}
}

// absorb folds one tally into the report, in merge order.
func (c *checker) absorb(t *interactionTally) {
	st := &c.rep.Stats
	st.InteractionCandidates += t.candidates
	st.InteractionChecked += t.checked
	st.SkippedNoRule += t.skippedNoRule
	st.SkippedSameNetExempt += t.skippedSameNet
	st.SkippedRelated += t.skippedRelated
	st.SkippedConnectionPairs += t.skippedConn
	st.ProcessDowngrades += t.downgrades
	if c.curStage != nil {
		c.curStage.Checks += t.checks
	}
	c.rep.Violations = append(c.rep.Violations, t.violations...)
}

// checkInteractions is pipeline stage 5: everything that remains after
// element, symbol, and connection checking is spacing between elements
// and/or primitive symbols, enumerated by the upper-triangular interaction
// matrix of Figure 12 with its same-net / different-net / device-related
// subcases — plus the device-dependent cross-symbol rules: accidental
// transistors (Figure 8), contacts over gates (Figure 7), and bipolar base
// versus isolation (Figure 6).
//
// With Options.Workers != 1 the item set is sharded into overlapping
// x-strips (strip width at least tech.MaxSpacing, so no cross-strip pair
// is missed) and the plane sweep runs per strip on a worker pool; each
// worker accumulates into its own tally and the tallies merge in strip
// order, making the parallel report identical to the serial one.
func (c *checker) checkInteractions(ex *netlist.Extraction) {
	maxGap := c.tech.MaxSpacing()

	var pf geom.PairFinder
	for i := range ex.Items {
		pf.AddRect(i, ex.Items[i].Bounds, int(ex.Items[i].Layer))
	}

	ic := newInteractionChecker(c, ex)
	if workers := c.opts.workerCount(); workers == 1 || pf.Len() < 2 {
		var t interactionTally
		pf.Pairs(maxGap, nil, func(p geom.Pair) { ic.pair(p, &t) })
		c.absorb(&t)
	} else {
		shards := pf.Shards(maxGap, workers*geom.StripsPerWorker)
		tallies := make([]interactionTally, len(shards))
		geom.RunShards(len(shards), workers, func(k int) {
			shards[k].Pairs(nil, func(p geom.Pair) { ic.pair(p, &tallies[k]) })
		})
		for k := range tallies {
			c.absorb(&tallies[k])
		}
	}

	// Contact cuts over gates, cross-symbol (Figure 7): a cut from any
	// OTHER device or interconnect must not land on a transistor channel.
	c.checkGateKeepouts(ex)
	// Bipolar base vs isolation, cross-symbol (Figure 6a).
	c.checkBaseKeepouts(ex)
}

// devKeepsSameNetSpacing reports whether the item's device demands spacing
// checks even on its own net (resistors, Figure 5b).
func (c *checker) devKeepsSameNetSpacing(ex *netlist.Extraction, dev int) bool {
	if dev < 0 {
		return false
	}
	info := ex.Netlist.Devices[dev].Info
	return info != nil && !info.SpacingExemptSameNet
}

// devMayTouchIsolation reports whether the item's device may legally
// connect to isolation (Figure 6b resistors).
func (c *checker) devMayTouchIsolation(ex *netlist.Extraction, dev int) bool {
	if dev < 0 {
		return false
	}
	info := ex.Netlist.Devices[dev].Info
	return info != nil && info.MayTouchIsolation
}

// checkGateKeepouts flags contact cuts overlapping MOS channels of other
// devices.
func (c *checker) checkGateKeepouts(ex *netlist.Extraction) {
	if len(ex.Gates) == 0 {
		return
	}
	cutID, ok := c.tech.LayerByName(tech.NMOSContact)
	if !ok {
		return
	}
	var pf geom.PairFinder
	for i := range ex.Items {
		if ex.Items[i].Layer == cutID {
			pf.AddRect(i, ex.Items[i].Bounds, 0)
		}
	}
	n := pf.Len()
	for gi := range ex.Gates {
		pf.AddRect(len(ex.Items)+gi, ex.Gates[gi].Bounds, 1)
	}
	if n == 0 {
		return
	}
	pf.Pairs(0, func(a, b geom.Item) bool { return a.Tag != b.Tag }, func(p geom.Pair) {
		cutItem, gateItem := p.A, p.B
		if cutItem.Tag == 1 {
			cutItem, gateItem = gateItem, cutItem
		}
		item := &ex.Items[cutItem.ID]
		gate := &ex.Gates[gateItem.ID-len(ex.Items)]
		if item.Dev == gate.Dev {
			return // in-symbol case handled by stage 2
		}
		c.countCheck()
		if ov := item.Reg.Intersect(gate.Reg); !ov.Empty() {
			c.add(Violation{
				Rule:     "DEV.GATE.CONTACT",
				Severity: Error,
				Detail:   "contact cut over the active gate of a transistor (Figure 7)",
				Where:    ov.Bounds(),
				Path:     item.Path,
			})
		}
	})
}

// checkBaseKeepouts flags isolation geometry approaching a bipolar
// transistor base (Figure 6a), from any other symbol or interconnect. The
// candidates come from the plane sweep with the largest keepout clearance
// as the gap, not an O(keepouts × items) scan.
func (c *checker) checkBaseKeepouts(ex *netlist.Extraction) {
	if len(ex.BaseKeepouts) == 0 {
		return
	}
	isoID, ok := c.tech.LayerByName(tech.BipIso)
	if !ok {
		return
	}
	var pf geom.PairFinder
	for i := range ex.Items {
		if ex.Items[i].Layer == isoID {
			pf.AddRect(i, ex.Items[i].Bounds, 0)
		}
	}
	if pf.Len() == 0 {
		return
	}
	var maxClear int64
	for ki := range ex.BaseKeepouts {
		if cl := ex.BaseKeepouts[ki].Clearance; cl > maxClear {
			maxClear = cl
		}
		pf.AddRect(len(ex.Items)+ki, ex.BaseKeepouts[ki].Bounds, 1)
	}
	pf.Pairs(maxClear, func(a, b geom.Item) bool { return a.Tag != b.Tag }, func(p geom.Pair) {
		isoItem, koItem := p.A, p.B
		if isoItem.Tag == 1 {
			isoItem, koItem = koItem, isoItem
		}
		item := &ex.Items[isoItem.ID]
		ko := &ex.BaseKeepouts[koItem.ID-len(ex.Items)]
		if item.Dev == ko.Dev {
			return
		}
		search := ko.Bounds.Expand(ko.Clearance)
		if !item.Bounds.Touches(search) {
			return // the sweep gap is the max clearance; this keepout's is smaller
		}
		c.countCheck()
		d, _, _ := geom.RegionDist(item.Reg, ko.Reg)
		if d < float64(ko.Clearance) || (ko.Clearance == 0 && item.Reg.Overlaps(ko.Reg)) {
			c.add(Violation{
				Rule:     "DEV.NPN.ISO",
				Severity: Error,
				Detail:   "isolation touches or approaches a transistor base (Figure 6a)",
				Where:    item.Bounds.Intersect(search),
				Path:     ex.Netlist.Devices[ko.Dev].Path,
			})
		}
	})
}
