package netlist

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/workload"
)

// sortedPairs returns a copy of ps in canonical order for set comparison.
func sortedPairs(ps [][2]int) [][2]int {
	out := make([][2]int, len(ps))
	copy(out, ps)
	for i := range out {
		if out[i][0] > out[i][1] {
			out[i][0], out[i][1] = out[i][1], out[i][0]
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// diffExtractions fails the test unless the two extractions are equal
// (illegal pairs compared as sets — discovery order is the one place the
// hierarchical and flat sweeps legitimately differ).
func diffExtractions(t *testing.T, label string, inc *Extraction, full *Extraction) {
	t.Helper()
	if len(inc.Items) != len(full.Items) {
		t.Fatalf("%s: item count %d != %d", label, len(inc.Items), len(full.Items))
	}
	for i := range inc.Items {
		a, b := inc.Items[i], full.Items[i]
		if a.Layer != b.Layer || a.Bounds != b.Bounds || a.Net != b.Net ||
			a.Dev != b.Dev || a.Sym != b.Sym || a.Elem != b.Elem || a.Path != b.Path {
			t.Fatalf("%s: item %d differs:\n inc: %+v\nfull: %+v", label, i, a, b)
		}
		if !reflect.DeepEqual(a.Reg, b.Reg) {
			t.Fatalf("%s: item %d region differs", label, i)
		}
	}
	if !reflect.DeepEqual(sortedPairs(inc.IllegalPairs), sortedPairs(full.IllegalPairs)) {
		t.Fatalf("%s: illegal pairs differ:\n inc: %v\nfull: %v",
			label, sortedPairs(inc.IllegalPairs), sortedPairs(full.IllegalPairs))
	}
	if !reflect.DeepEqual(inc.Gates, full.Gates) {
		t.Fatalf("%s: gates differ", label)
	}
	if !reflect.DeepEqual(inc.BaseKeepouts, full.BaseKeepouts) {
		t.Fatalf("%s: base keepouts differ", label)
	}
	diffNetlists(t, label, inc.Netlist, full.Netlist)
}

func diffNetlists(t *testing.T, label string, a, b *Netlist) {
	t.Helper()
	if len(a.Nets) != len(b.Nets) {
		t.Fatalf("%s: net count %d != %d", label, len(a.Nets), len(b.Nets))
	}
	for i := range a.Nets {
		if !reflect.DeepEqual(a.Nets[i], b.Nets[i]) {
			t.Fatalf("%s: net %d differs:\n inc: %+v\nfull: %+v", label, i, a.Nets[i], b.Nets[i])
		}
	}
	if len(a.Devices) != len(b.Devices) {
		t.Fatalf("%s: device count %d != %d", label, len(a.Devices), len(b.Devices))
	}
	for i := range a.Devices {
		da, db := a.Devices[i], b.Devices[i]
		if da.Path != db.Path || da.Type != db.Type || da.Class != db.Class ||
			da.T != db.T || da.Symbol != db.Symbol {
			t.Fatalf("%s: device %d differs:\n inc: %+v\nfull: %+v", label, i, da, db)
		}
		if !reflect.DeepEqual(da.TerminalNets, db.TerminalNets) {
			t.Fatalf("%s: device %d terminal nets differ: %v vs %v",
				label, i, da.TerminalNets, db.TerminalNets)
		}
	}
	if !reflect.DeepEqual(a.byName, b.byName) {
		t.Fatalf("%s: name tables differ", label)
	}
}

func diffIssues(t *testing.T, label string, a, b []Issue) {
	t.Helper()
	if len(a) == 0 && len(b) == 0 {
		return
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: issues differ:\n inc: %v\nfull: %v", label, a, b)
	}
}

func checkIncrementalMatch(t *testing.T, label string, d *layout.Design, tc *tech.Technology, c *Cache) {
	t.Helper()
	full, fullIssues, fullErr := ExtractFull(d, tc)
	inc, incIssues, incErr := ExtractIncremental(d, tc, c, nil)
	if (fullErr == nil) != (incErr == nil) {
		t.Fatalf("%s: error mismatch: full=%v inc=%v", label, fullErr, incErr)
	}
	if fullErr != nil {
		return
	}
	diffIssues(t, label, incIssues, fullIssues)
	diffExtractions(t, label, inc.Extraction, full)

	// The instance tree must tile the item array exactly.
	for ii := 1; ii < len(inc.Instances); ii++ {
		in := inc.Instances[ii]
		end := in.ItemStart + len(in.Art.Items)
		if in.ItemStart < 0 || end > len(inc.Items) {
			t.Fatalf("%s: instance %d item range [%d,%d) out of bounds", label, ii, in.ItemStart, end)
		}
		for k := range in.Art.Items {
			gi := in.ItemStart + k
			li := &in.Art.Items[k]
			g := &inc.Items[gi]
			if g.Layer != li.Layer || g.Sym != li.Sym || g.Elem != li.Elem {
				t.Fatalf("%s: instance %d item %d does not correspond to def item", label, ii, k)
			}
			if g.Bounds != in.T.ApplyRect(li.Bounds) {
				t.Fatalf("%s: instance %d item %d bounds not the transform of def bounds", label, ii, k)
			}
		}
	}
}

func TestIncrementalMatchesFull(t *testing.T) {
	tc := tech.NMOS()
	c := NewCache()

	chip := workload.NewChip(tc, "clean", 4, 5)
	checkIncrementalMatch(t, "clean 4x5", chip.Design, tc, c)

	dirty := workload.NewChip(tc, "dirty", 6, 7)
	workload.InjectErrors(dirty, 20, 1980)
	checkIncrementalMatch(t, "dirty 6x7", dirty.Design, tc, NewCache())

	bip := workload.NewBipolarChip(tech.Bipolar(), "bip", 6)
	bip.BreakIsolation(2)
	checkIncrementalMatch(t, "bipolar", bip.Design, tech.Bipolar(), NewCache())

	for _, p := range workload.AllPathologies() {
		checkIncrementalMatch(t, "pathology "+p.Name, p.Design, p.Tech, NewCache())
	}
}

// TestIncrementalWarmMatchesFull mutates one symbol and re-extracts with a
// warm cache: the result must equal a from-scratch flat extraction of the
// mutated design.
func TestIncrementalWarmMatchesFull(t *testing.T) {
	tc := tech.NMOS()
	c := NewCache()
	chip := workload.NewChip(tc, "warm", 4, 6)
	if _, _, err := ExtractIncremental(chip.Design, tc, c, nil); err != nil {
		t.Fatal(err)
	}

	// Edit 1: add a wire to the top symbol.
	metalL, _ := tc.LayerByName(tech.NMOSMetal)
	chip.Design.Top.AddWire(metalL, 750, "", geom.Pt(-20000, 0), geom.Pt(-20000, 8000))
	checkIncrementalMatch(t, "top edit", chip.Design, tc, c)

	// Edit 2: mutate the shared cell symbol (dirties every instance).
	inv, ok := chip.Design.Symbol("inv")
	if !ok {
		t.Fatal("no inv symbol")
	}
	inv.AddBox(metalL, geom.R(-1000, 5000, 0, 5750), "")
	checkIncrementalMatch(t, "cell edit", chip.Design, tc, c)

	// Edit 3: declare a net on an existing element (changes names only).
	chip.Design.Top.Elements[0].Net = "trunkprobe"
	checkIncrementalMatch(t, "net rename", chip.Design, tc, c)
}
