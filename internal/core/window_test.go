package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/tech"
	"repro/internal/workload"
)

// TestEngineWindowRecheckParity locks the windowed recheck: after any
// window-scoped edit (layout.ApplyEdit move_element), a warm Recheck must
// fingerprint-match a cold engine on the same design state, whether the
// patch fast path engaged or refused. The WindowPatched stat pins down
// which path ran, so the fast path cannot silently stop engaging.
func TestEngineWindowRecheckParity(t *testing.T) {
	nm := tech.NMOS()
	chip := workload.NewChip(nm, "win", 6, 6)
	d := chip.Design
	metalL, _ := nm.LayerByName(tech.NMOSMetal)
	top := d.Top
	// Two isolated anonymous probes west of the array; their moves are
	// the patchable edits (each is the sole member of an anonymous net).
	top.AddBox(metalL, geom.R(-15000, 0, -14250, 1000), "")
	top.AddBox(metalL, geom.R(-20000, 4000, -19250, 5000), "")
	probeA, probeB := len(top.Elements)-2, len(top.Elements)-1

	eng := NewEngine(nm, Options{Workers: 1})
	if _, err := eng.Check(d); err != nil {
		t.Fatal(err)
	}

	move := func(idx int, dx, dy int64) {
		t.Helper()
		if err := layout.ApplyEdit(d, nm, layout.Edit{
			Op: layout.OpMoveElement, Symbol: top.Name, Index: idx, DX: dx, DY: dy,
		}); err != nil {
			t.Fatal(err)
		}
	}
	verify := func(label string, wantPatched bool) {
		t.Helper()
		warm, err := eng.Recheck(d)
		if err != nil {
			t.Fatalf("%s: recheck: %v", label, err)
		}
		if got := eng.Stats().WindowPatched; got != wantPatched {
			t.Fatalf("%s: WindowPatched = %v, want %v", label, got, wantPatched)
		}
		cold, err := NewEngine(nm, Options{Workers: 1}).Check(d)
		if err != nil {
			t.Fatalf("%s: cold: %v", label, err)
		}
		requireSameReport(t, label+" warm vs cold", warm, cold)
	}

	// Nominal: one isolated move patches the root in place.
	move(probeA, 0, 250)
	verify("one-box move", true)

	// Two moves batched between rechecks: a multi-item patch.
	move(probeA, 0, -250)
	move(probeB, 500, 0)
	verify("two-box batch", true)

	// An unchanged design replays the previous run verbatim.
	verify("no-edit replay", true)

	// Moving a declared-net element (the VDD trunk) is window-scoped but
	// not electrically inert: the patch must refuse and the full path
	// take over, still matching the oracle.
	move(0, 250, 0)
	verify("rail move refuses patch", false)
	move(0, -250, 0)
	verify("rail move back refuses patch", false)

	// The full run re-records the replay state, so patching recovers.
	move(probeA, 0, 250)
	verify("patch recovers after refusal", true)

	// Structural edits (add + delete) degrade to full dirtiness.
	move(probeA, 0, -250)
	top.AddBox(metalL, geom.R(-25000, 0, -24250, 1000), "")
	verify("structural edit refuses patch", false)
	if err := layout.ApplyEdit(d, nm, layout.Edit{
		Op: layout.OpDeleteElement, Symbol: top.Name, Index: -1,
	}); err != nil {
		t.Fatal(err)
	}
	verify("delete refuses patch", false)

	// Randomized drift: repeated small window-scoped moves must keep the
	// patch engaged and the report oracle-identical at every step.
	rng := rand.New(rand.NewSource(1980))
	steps := 10
	if testing.Short() {
		steps = 3
	}
	for i := 0; i < steps; i++ {
		dy := rng.Int63n(501) - 250
		move(probeA, 0, dy)
		verify(fmt.Sprintf("drift step %d (dy %d)", i, dy), true)
	}
}

// TestEngineWindowRecheckOtherSymbolFullPath: a window-scoped edit inside
// a non-top symbol dirties the whole subtree chain, so the windowed patch
// must not engage — and the warm result still matches the oracle.
func TestEngineWindowRecheckOtherSymbolFullPath(t *testing.T) {
	nm := tech.NMOS()
	chip := workload.NewChipUnique(nm, "winrow", 4, 4)
	d := chip.Design
	row, ok := d.Symbol("row2")
	if !ok {
		t.Fatal("row2 missing")
	}
	metalL, _ := nm.LayerByName(tech.NMOSMetal)
	row.AddBox(metalL, geom.R(-5000, 0, -4250, 1000), "")

	eng := NewEngine(nm, Options{Workers: 1})
	if _, err := eng.Check(d); err != nil {
		t.Fatal(err)
	}
	if err := layout.ApplyEdit(d, nm, layout.Edit{
		Op: layout.OpMoveElement, Symbol: "row2", Index: -1, DY: 250,
	}); err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Recheck(d)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().WindowPatched {
		t.Fatal("patch engaged for a non-top edit")
	}
	cold, err := NewEngine(nm, Options{Workers: 1}).Check(d)
	if err != nil {
		t.Fatal(err)
	}
	requireSameReport(t, "row edit warm vs cold", warm, cold)
}

// TestNetEnvSignatureTalliesIdentical pins the signature cache's core
// guarantee: the signature bytes are deterministic, and two instances
// with equal signatures adjudicate to byte-identical tallies — same
// violations, same counters — so replaying one tally for both is sound.
func TestNetEnvSignatureTalliesIdentical(t *testing.T) {
	nm := tech.NMOS()
	chip := workload.NewChip(nm, "sigdet", 4, 5)
	inc, _, err := netlist.ExtractVirtual(chip.Design, nm, netlist.NewCache(), nil)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(nm, Options{Workers: 1})
	maxGap := e.ct.MaxSpacing()

	// The same global net facts checkInteractions computes.
	ex := inc.Extraction
	hasDev := make([]bool, len(ex.Netlist.Nets))
	for i := range ex.Netlist.Nets {
		hasDev[i] = len(ex.Netlist.Nets[i].Terminals) > 0
	}
	shared := make(map[uint64]bool)
	var netBuf []netlist.NetID
	for di := range ex.Netlist.Devices {
		netBuf = ex.Netlist.Devices[di].TerminalNetIDs(netBuf[:0])
		for i := 0; i < len(netBuf); i++ {
			for j := i + 1; j < len(netBuf); j++ {
				lo, hi := netBuf[i], netBuf[j]
				if lo > hi {
					lo, hi = hi, lo
				}
				shared[uint64(lo)<<32|uint64(uint32(hi))] = true
			}
		}
	}
	scratch := &sigScratch{
		labelOf:   make([]int, len(ex.Netlist.Nets)),
		labelSeen: make([]uint32, len(ex.Netlist.Nets)),
	}

	type obs struct {
		tally *interactionTally
		inst  int
	}
	stats := &EngineStats{}
	bySig := make(map[string][]obs)
	for ii := range inc.Instances {
		art := inc.Instances[ii].Art
		di := e.defInterFor(art, maxGap, stats)
		if len(di.pairs) == 0 || di.netFree {
			continue
		}
		sig := string(e.netEnvSignature(di, inc, ii, hasDev, shared, scratch))
		labels := append([]int(nil), scratch.labels...)
		again := string(e.netEnvSignature(di, inc, ii, hasDev, shared, scratch))
		if sig != again {
			t.Fatalf("instance %d: signature not deterministic", ii)
		}
		// Adjudicate independently per instance (bypassing the tally
		// cache) so equality below is a real statement about signatures.
		tally := e.adjudicateDef(di, labels, []byte(sig))
		key := fmt.Sprintf("%p/%x", art, sig)
		bySig[key] = append(bySig[key], obs{tally: tally, inst: ii})
	}
	groups := 0
	for key, list := range bySig {
		if len(list) < 2 {
			continue
		}
		groups++
		for _, o := range list[1:] {
			if !reflect.DeepEqual(list[0].tally, o.tally) {
				t.Fatalf("%s: instances %d and %d share a signature but adjudicated differently:\n%+v\nvs\n%+v",
					key, list[0].inst, o.inst, list[0].tally, o.tally)
			}
		}
	}
	if groups == 0 {
		t.Fatal("no shared signatures observed; workload too small to exercise tally replay")
	}
}

// TestWindowRecheckAllocsBounded guards the steady-state allocation count
// of the patched recheck loop — the sub-millisecond path must not regress
// into per-instance or per-item allocation.
func TestWindowRecheckAllocsBounded(t *testing.T) {
	nm := tech.NMOS()
	chip := workload.NewChip(nm, "winalloc", 16, 16)
	d := chip.Design
	metalL, _ := nm.LayerByName(tech.NMOSMetal)
	d.Top.AddBox(metalL, geom.R(-15000, 0, -14250, 1000), "")
	eng := NewEngine(nm, Options{Workers: 1})
	if _, err := eng.Check(d); err != nil {
		t.Fatal(err)
	}
	dy := int64(250)
	allocs := testing.AllocsPerRun(20, func() {
		if err := layout.ApplyEdit(d, nm, layout.Edit{
			Op: layout.OpMoveElement, Symbol: d.Top.Name, Index: -1, DY: dy,
		}); err != nil {
			t.Fatal(err)
		}
		dy = -dy
		if _, err := eng.Recheck(d); err != nil {
			t.Fatal(err)
		}
	})
	if !eng.Stats().WindowPatched {
		t.Fatal("window patch path did not engage")
	}
	const maxAllocs = 600
	if allocs > maxAllocs {
		t.Fatalf("patched recheck allocates %.0f objects per run, want <= %d", allocs, maxAllocs)
	}
}
