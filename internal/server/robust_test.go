package server

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// noRetry returns the client with automatic retries disabled, so tests
// observe the raw 429/503 the daemon actually sent.
func noRetry(c *Client) *Client {
	c.MaxRetries = -1
	return c
}

func apiStatus(t *testing.T, err error) *APIError {
	t.Helper()
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("expected *APIError, got %T: %v", err, err)
	}
	return apiErr
}

// TestPanicPoisonsOnlyItsSession injects a panic into one session and
// asserts the blast radius: that session is quarantined (500/poisoned on
// every later request), while its sibling and the daemon itself keep
// serving.
func TestPanicPoisonsOnlyItsSession(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	srv, c := newTestServer(t, Config{Debounce: time.Hour, TestHooks: true})

	victim, err := c.SessionCreate(context.Background(), CreateRequest{Name: "victim", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := c.SessionCreate(context.Background(), CreateRequest{Name: "bystander", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}

	if err := c.SessionInject(context.Background(), victim.ID, InjectRequest{PanicCount: 1}); err != nil {
		t.Fatal(err)
	}
	_, err = c.SessionEdit(context.Background(), victim.ID, breakEdits())
	apiErr := apiStatus(t, err)
	if apiErr.Status != http.StatusInternalServerError || apiErr.Class != ClassPanic {
		t.Fatalf("injected panic: got %d/%s, want 500/%s", apiErr.Status, apiErr.Class, ClassPanic)
	}

	// The victim is quarantined from here on.
	_, err = c.SessionReport(context.Background(), victim.ID)
	apiErr = apiStatus(t, err)
	if apiErr.Status != http.StatusInternalServerError || apiErr.Class != ClassPoisoned {
		t.Fatalf("poisoned report: got %d/%s, want 500/%s", apiErr.Status, apiErr.Class, ClassPoisoned)
	}
	st, err := c.SessionStats(context.Background(), victim.ID)
	if err != nil {
		t.Fatalf("stats must answer for poisoned sessions: %v", err)
	}
	if !st.Poisoned {
		t.Fatal("stats does not report the poisoning")
	}

	// The sibling is untouched and the daemon is healthy.
	if _, err := c.SessionEdit(context.Background(), bystander.ID, breakEdits()); err != nil {
		t.Fatal(err)
	}
	if rep, err := c.SessionReport(context.Background(), bystander.ID); err != nil || rep.Clean {
		t.Fatalf("bystander report: err=%v clean=%v", err, rep != nil && rep.Clean)
	}
	resp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	gst, err := c.ServerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gst.PanicsRecovered == 0 || gst.SessionsPoisoned == 0 {
		t.Fatalf("global counters missed the panic: %+v", gst)
	}
	_ = srv
}

// TestDeadlineExpiry503 arms a slow check longer than the configured
// check deadline and asserts the report comes back 503/timeout with a
// Retry-After, the session recovers within one more report, and the
// daemon does not leak goroutines.
func TestDeadlineExpiry503(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	_, c := newTestServer(t, Config{
		Debounce:     time.Hour, // reports are the only flush trigger
		CheckTimeout: 80 * time.Millisecond,
		TestHooks:    true,
	})
	noRetry(c)

	created, err := c.SessionCreate(context.Background(), CreateRequest{Name: "slow", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionEdit(context.Background(), created.ID, breakEdits()); err != nil {
		t.Fatal(err)
	}
	if err := c.SessionInject(context.Background(), created.ID, InjectRequest{SlowMS: 2000, SlowCount: 1}); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	_, err = c.SessionReport(context.Background(), created.ID)
	apiErr := apiStatus(t, err)
	if apiErr.Status != http.StatusServiceUnavailable || apiErr.Class != ClassTimeout {
		t.Fatalf("slow report: got %d/%s, want 503/%s", apiErr.Status, apiErr.Class, ClassTimeout)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatal("503 carried no Retry-After")
	}

	// The injected slowness was consumed by the aborted run; the retry the
	// Retry-After invited must succeed and still see the edit.
	rep, err := c.SessionReport(context.Background(), created.ID)
	if err != nil {
		t.Fatalf("report after expiry did not recover: %v", err)
	}
	if rep.Clean {
		t.Fatal("recovered report lost the edit")
	}

	// No goroutine may be parked on the expired flush. Allow the count to
	// settle — HTTP keep-alive and timer goroutines wind down lazily.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before expiry, %d after settle", before, runtime.NumGoroutine())
}

// TestAdmissionQueueFull429 fills the single check slot (zero queue) with
// an injected slow flush and asserts the next check-triggering request is
// rejected 429/overload immediately, with the rejection visible on the
// global stats.
func TestAdmissionQueueFull429(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	_, c := newTestServer(t, Config{
		Debounce:    time.Hour,
		MaxInflight: 1,
		QueueDepth:  -1, // no waiting room: reject the moment the slot is taken
		TestHooks:   true,
	})
	noRetry(c)

	a, err := c.SessionCreate(context.Background(), CreateRequest{Name: "hog", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.SessionCreate(context.Background(), CreateRequest{Name: "starved", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{a.ID, b.ID} {
		if _, err := c.SessionEdit(context.Background(), id, breakEdits()); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SessionInject(context.Background(), a.ID, InjectRequest{SlowMS: 1500, SlowCount: 1}); err != nil {
		t.Fatal(err)
	}

	hogDone := make(chan error, 1)
	go func() {
		_, err := c.SessionReport(context.Background(), a.ID)
		hogDone <- err
	}()
	// Wait until the hog actually holds the slot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		gst, err := c.ServerStats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if gst.InflightChecks >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hog never took the check slot")
		}
		time.Sleep(10 * time.Millisecond)
	}

	_, err = c.SessionReport(context.Background(), b.ID)
	apiErr := apiStatus(t, err)
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Class != ClassOverload {
		t.Fatalf("saturated report: got %d/%s, want 429/%s", apiErr.Status, apiErr.Class, ClassOverload)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatal("429 carried no Retry-After")
	}
	if err := <-hogDone; err != nil {
		t.Fatalf("hog report failed: %v", err)
	}

	gst, err := c.ServerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gst.Rejected429 == 0 {
		t.Fatalf("rejection not counted: %+v", gst)
	}
	// Once the hog drains, the starved session must get through.
	if rep, err := c.SessionReport(context.Background(), b.ID); err != nil || rep.Clean {
		t.Fatalf("post-saturation report: err=%v", err)
	}
}

// TestBodyTooLarge413 asserts the body cap answers an oversize POST with
// a structured 413 instead of an unbounded read.
func TestBodyTooLarge413(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	_, c := newTestServer(t, Config{Debounce: time.Hour, MaxBodyBytes: 2048})

	big := CreateRequest{Name: "big", CIF: text + strings.Repeat(" ", 4096), Tech: "cmos"}
	_, err := c.SessionCreate(context.Background(), big)
	apiErr := apiStatus(t, err)
	if apiErr.Status != http.StatusRequestEntityTooLarge || apiErr.Class != ClassTooLarge {
		t.Fatalf("oversize create: got %d/%s, want 413/%s", apiErr.Status, apiErr.Class, ClassTooLarge)
	}
}

// TestEvictedMidRequest410 closes a session while a caller still holds a
// handle to it and asserts the contract: a clean 410/gone, not a torn
// state or a 500.
func TestEvictedMidRequest410(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	srv, c := newTestServer(t, Config{Debounce: time.Hour})

	created, err := c.SessionCreate(context.Background(), CreateRequest{Name: "doomed", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	sess, ok := srv.lookup(created.ID)
	if !ok {
		t.Fatal("session not registered")
	}
	// Simulate the eviction racing a request that already resolved the
	// session pointer: the session closes underneath it.
	sess.close()
	if _, serr := sess.report(context.Background()); serr == nil || serr.code != http.StatusGone || serr.class != ClassGone {
		t.Fatalf("report on closed session: got %+v, want 410/%s", serr, ClassGone)
	}
	if _, _, serr := sess.applyEdits(breakEdits()); serr == nil || serr.code != http.StatusGone {
		t.Fatalf("edit on closed session: got %+v, want 410", serr)
	}
}

// TestInjectRequiresTestHooks asserts the fault-injection endpoint is not
// routed unless explicitly enabled.
func TestInjectRequiresTestHooks(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	_, c := newTestServer(t, Config{Debounce: time.Hour}) // TestHooks off

	created, err := c.SessionCreate(context.Background(), CreateRequest{Name: "prod", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	err = c.SessionInject(context.Background(), created.ID, InjectRequest{PanicCount: 1})
	apiErr := apiStatus(t, err)
	if apiErr.Status != http.StatusNotFound {
		t.Fatalf("inject without -test-hooks: got %d, want 404", apiErr.Status)
	}
}
