package server

import (
	"context"
	"net/http"
	"sync"
)

// admission is the bounded work-queue in front of every engine run (cold
// checks and recheck flushes). At most maxInflight runs proceed at once;
// up to depth more callers wait in line; everyone past that is rejected
// immediately with 429 instead of piling a goroutine onto the queue. A
// caller whose context expires while waiting gets 503 — both rejections
// happen before any session state changes, so they are always safe for
// the client to retry.
type admission struct {
	sem   chan struct{} // buffered maxInflight: a slot held = a run in flight
	depth int

	mu       sync.Mutex
	queued   int
	admitted uint64
	rejFull  uint64 // 429: queue full
	rejWait  uint64 // 503: context expired while queued
}

func newAdmission(maxInflight, depth int) *admission {
	return &admission{sem: make(chan struct{}, maxInflight), depth: depth}
}

// tryAcquire takes a slot only if one is free right now — the debounce
// timer's flush uses it so background work never queues (it re-arms and
// retries instead).
func (a *admission) tryAcquire() bool {
	select {
	case a.sem <- struct{}{}:
		a.mu.Lock()
		a.admitted++
		a.mu.Unlock()
		return true
	default:
		return false
	}
}

// acquire takes a slot, waiting in the bounded queue if necessary.
func (a *admission) acquire(ctx context.Context) *svcError {
	select {
	case a.sem <- struct{}{}:
		a.mu.Lock()
		a.admitted++
		a.mu.Unlock()
		return nil
	default:
	}
	a.mu.Lock()
	if a.queued >= a.depth {
		a.rejFull++
		inflight := len(a.sem)
		queued := a.queued
		a.mu.Unlock()
		return errf(http.StatusTooManyRequests, ClassOverload,
			"check queue full (%d in flight, %d queued); retry later", inflight, queued)
	}
	a.queued++
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.queued--
		a.mu.Unlock()
	}()
	select {
	case a.sem <- struct{}{}:
		a.mu.Lock()
		a.admitted++
		a.mu.Unlock()
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		a.rejWait++
		a.mu.Unlock()
		return errf(http.StatusServiceUnavailable, ClassTimeout,
			"deadline expired while queued for a check slot: %v", ctx.Err())
	}
}

func (a *admission) release() { <-a.sem }

// gauges returns the live inflight/queued counts plus the cumulative
// admitted/rejected counters.
func (a *admission) gauges() (inflight, queued int, admitted, rejFull, rejWait uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.sem), a.queued, a.admitted, a.rejFull, a.rejWait
}
