package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

func TestReportErrorsAndClean(t *testing.T) {
	rep := &Report{}
	if !rep.Clean() {
		t.Fatal("empty report not clean")
	}
	if got := rep.Errors(); len(got) != 0 {
		t.Fatalf("empty report has errors: %v", got)
	}

	rep.Violations = []Violation{
		{Rule: "W.NM", Severity: Warning},
		{Rule: "S.ND.ND.diff", Severity: Error},
		{Rule: "NET.OPEN", Severity: Warning},
		{Rule: "DEV.ACCIDENTAL", Severity: Error},
	}
	errs := rep.Errors()
	if len(errs) != 2 {
		t.Fatalf("errors = %d, want 2", len(errs))
	}
	for _, v := range errs {
		if v.Severity != Error {
			t.Fatalf("Errors() returned a %v", v.Severity)
		}
	}
	if rep.Clean() {
		t.Fatal("report with errors claims clean")
	}

	rep.Violations = []Violation{{Rule: "NET.OPEN", Severity: Warning}}
	if !rep.Clean() {
		t.Fatal("warnings alone must not break Clean")
	}
}

func TestOptionsWorkerCount(t *testing.T) {
	cases := []struct {
		workers int
		want    int
	}{
		{0, runtime.NumCPU()},  // default: all cores
		{-3, runtime.NumCPU()}, // nonsense values fall back too
		{1, 1},                 // serial reference sweep
		{7, 7},
	}
	for _, c := range cases {
		if got := (Options{Workers: c.workers}).workerCount(); got != c.want {
			t.Errorf("workerCount(Workers=%d) = %d, want %d", c.workers, got, c.want)
		}
	}
}

// TestSortViolationsTotalOrder: the comparator must induce a total order
// over distinct violations — equal-prefix ties (same rule, location
// corner, detail) must still sort deterministically by the remaining
// fields, or reports assembled in different discovery orders could differ
// byte-for-byte after sorting. Shuffling any violation set and re-sorting
// must reproduce one canonical order.
func TestSortViolationsTotalOrder(t *testing.T) {
	base := Violation{
		Rule:   "S.NM.NM.diff",
		Detail: "tie",
		Where:  geom.R(0, 0, 100, 100),
		Path:   "r0.c1",
	}
	// Violations that tie on the legacy key (rule, symbol, path, X1, Y1,
	// detail) and differ only in later fields.
	tied := []Violation{base, base, base, base}
	tied[1].Where.X2 = 200
	tied[2].Severity = Warning
	tied[3].Layer = tech.LayerID(3)
	tied = append(tied, Violation{
		Rule: "S.NM.NM.diff", Detail: "tie", Where: geom.R(0, 0, 100, 100),
		Path: "r0.c1", Nets: []string{"a", "b"},
	})

	var canonical []Violation
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		vs := make([]Violation, len(tied))
		copy(vs, tied)
		rng.Shuffle(len(vs), func(i, j int) { vs[i], vs[j] = vs[j], vs[i] })
		sortViolations(vs)
		if canonical == nil {
			canonical = vs
			continue
		}
		if !reflect.DeepEqual(vs, canonical) {
			t.Fatalf("trial %d: sort order not canonical:\n got %v\nwant %v", trial, vs, canonical)
		}
	}

	// The comparator must agree with itself under argument swap.
	for i := range tied {
		for j := range tied {
			ij := CompareViolations(&tied[i], &tied[j])
			ji := CompareViolations(&tied[j], &tied[i])
			if (ij < 0) != (ji > 0) && !(ij == 0 && ji == 0) {
				t.Fatalf("comparator asymmetric for %d,%d: %d vs %d", i, j, ij, ji)
			}
			if i == j && ij != 0 {
				t.Fatalf("violation %d not equal to itself", i)
			}
		}
	}
}
