// Package server is the concurrent DRC check service: a long-running
// HTTP/JSON daemon (cmd/dicheckd) that manages named check sessions, each
// owning one incremental core.Engine and one design, plus the client
// library the shipped tools and the integration tests drive it with.
//
// The wire report below is the same machine-readable projection of
// core.Report that `dicheck -json` prints, extended with the fingerprint
// digest: field names are part of the output contract; extend, don't
// rename. Every report-shaped payload — full report, report delta,
// on-disk snapshot — declares its schema explicitly (report/v1,
// report-delta/v1, snapshot/v1) and shares one Envelope, so there is
// exactly one place the common header fields are defined.
package server

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/tech"
)

// Wire schema tags. Every versioned payload carries its tag in the
// envelope's "schema" field; a breaking field change bumps the suffix.
const (
	SchemaReport      = "report/v1"
	SchemaReportDelta = "report-delta/v1"
	SchemaSnapshot    = "snapshot/v1"
)

// Envelope is the shared wire header: the schema tag, the fingerprint of
// the design state the payload describes (core.FingerprintDigest — equal
// digests mean the duration-free report content is byte-identical, the
// parity contract between a served session and an offline replay), the
// per-class violation tally, and the duration of the engine run that
// produced that state. Full reports, report deltas, and session
// snapshots all embed it.
type Envelope struct {
	Schema      string         `json:"schema"`
	Fingerprint string         `json:"fingerprint"`
	Classes     map[string]int `json:"classes,omitempty"`
	CheckNS     int64          `json:"check_ns,omitempty"`
}

// ReportBody is the non-violation remainder of a report: small,
// fixed-size summary data that ships with both full reports and deltas —
// a delta plus its base reconstructs a full report byte-identically
// because everything outside the violation list rides along.
type ReportBody struct {
	Design   string       `json:"design"`
	Clean    bool         `json:"clean"`
	Errors   int          `json:"errors"`
	Warnings int          `json:"warnings"`
	Stages   []Stage      `json:"stages"`
	Stats    Stats        `json:"stats"`
	Netlist  *Netlist     `json:"netlist,omitempty"`
	Engine   *EngineStats `json:"engine,omitempty"`
}

// Report is the wire form of a full check report (schema report/v1).
type Report struct {
	Envelope
	ReportBody
	Violations []Violation `json:"violations"`

	// WireBytes is the encoded payload size the client observed (not a
	// wire field — the daemon never sends it).
	WireBytes int64 `json:"-"`
}

// ReportDelta is the incremental wire form (schema report-delta/v1),
// answered on GET /v1/sessions/{id}/report?since=<fingerprint>: the
// envelope and body describe the current state, Added/Removed are the
// violations that appeared/disappeared since the Base fingerprint.
// Applying the delta to the base report (ApplyDelta) reproduces the full
// current report byte-identically.
//
// When the base fingerprint is unknown or evicted from the session's
// bounded history, the daemon falls back to Reset=true with Base empty
// and Added carrying the complete violation list — a reset delta IS a
// full report in delta clothing, so clients always converge.
type ReportDelta struct {
	Envelope
	Base    string      `json:"base,omitempty"`
	Reset   bool        `json:"reset,omitempty"`
	Added   []Violation `json:"added"`
	Removed []Violation `json:"removed"`
	ReportBody

	// WireBytes is the encoded payload size the client observed (not a
	// wire field).
	WireBytes int64 `json:"-"`
}

func (r *Report) setWireBytes(n int64)      { r.WireBytes = n }
func (d *ReportDelta) setWireBytes(n int64) { d.WireBytes = n }

// Violation is the wire form of one finding.
type Violation struct {
	Rule     string   `json:"rule"`
	Severity string   `json:"severity"`
	Detail   string   `json:"detail"`
	Where    Rect     `json:"where"`
	Symbol   string   `json:"symbol,omitempty"`
	Path     string   `json:"path,omitempty"`
	Layer    int      `json:"layer"`
	Nets     []string `json:"nets,omitempty"`
}

// Rect is the wire form of a geom.Rect.
type Rect struct {
	X1 int64 `json:"x1"`
	Y1 int64 `json:"y1"`
	X2 int64 `json:"x2"`
	Y2 int64 `json:"y2"`
}

// Stage is one pipeline stage's timing and counters.
type Stage struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
	Checks     int    `json:"checks"`
	Violations int    `json:"violations"`
}

// Stats is the wire form of core.Stats.
type Stats struct {
	ElementsChecked        int `json:"elements_checked"`
	SymbolDefsChecked      int `json:"symbol_defs_checked"`
	DeviceInstances        int `json:"device_instances"`
	InteractionCandidates  int `json:"interaction_candidates"`
	InteractionChecked     int `json:"interaction_checked"`
	SkippedNoRule          int `json:"skipped_no_rule"`
	SkippedSameNetExempt   int `json:"skipped_same_net_exempt"`
	SkippedRelated         int `json:"skipped_related"`
	SkippedConnectionPairs int `json:"skipped_connection_pairs"`
	ProcessDowngrades      int `json:"process_downgrades"`
}

// Netlist summarizes the extracted netlist.
type Netlist struct {
	Nets    int `json:"nets"`
	Devices int `json:"devices"`
}

// EngineStats is the wire form of core.EngineStats. CtxHits/CtxMisses are
// the netlist cache's span-context counters (derived-by-translation vs
// built-from-scratch); WindowPatched reports whether the last run took the
// windowed root-patch fast path.
type EngineStats struct {
	Runs          int  `json:"runs"`
	Symbols       int  `json:"symbols"`
	DirtySymbols  int  `json:"dirty_symbols"`
	ArtifactDefs  int  `json:"artifact_defs"`
	InterBuilt    int  `json:"inter_built"`
	InterReused   int  `json:"inter_reused"`
	SigMisses     int  `json:"sig_misses"`
	SigHits       int  `json:"sig_hits"`
	CtxHits       int  `json:"ctx_hits"`
	CtxMisses     int  `json:"ctx_misses"`
	WindowPatched bool `json:"window_patched"`
}

func rectWire(r geom.Rect) Rect { return Rect{r.X1, r.Y1, r.X2, r.Y2} }

func engineWire(es core.EngineStats) *EngineStats {
	return &EngineStats{
		Runs: es.Runs, Symbols: es.Symbols, DirtySymbols: es.DirtySymbols,
		ArtifactDefs: es.ArtifactDefs, InterBuilt: es.InterBuilt,
		InterReused: es.InterReused, SigMisses: es.SigMisses, SigHits: es.SigHits,
		CtxHits: es.CtxHits, CtxMisses: es.CtxMisses, WindowPatched: es.WindowPatched,
	}
}

// violationWire projects one core violation into wire form.
func violationWire(v *core.Violation) Violation {
	return Violation{
		Rule:     v.Rule,
		Severity: v.Severity.String(),
		Detail:   v.Detail,
		Where:    rectWire(v.Where),
		Symbol:   v.Symbol,
		Path:     v.Path,
		Layer:    int(v.Layer),
		Nets:     v.Nets,
	}
}

// violationsWire projects a core violation sequence; the result is never
// nil so empty lists marshal as [] rather than null.
func violationsWire(vs []core.Violation) []Violation {
	out := make([]Violation, 0, len(vs))
	for i := range vs {
		out = append(out, violationWire(&vs[i]))
	}
	return out
}

// violationCore inverts violationWire — the conversion is lossless, which
// is what lets snapshots persist the delta history in wire form and
// restore it into the engine-domain ring.
func violationCore(v *Violation) core.Violation {
	sev := core.Error
	if v.Severity == core.Warning.String() {
		sev = core.Warning
	}
	return core.Violation{
		Rule:     v.Rule,
		Severity: sev,
		Detail:   v.Detail,
		Where:    geom.Rect{X1: v.Where.X1, Y1: v.Where.Y1, X2: v.Where.X2, Y2: v.Where.Y2},
		Symbol:   v.Symbol,
		Path:     v.Path,
		Layer:    tech.LayerID(v.Layer),
		Nets:     v.Nets,
	}
}

// violationsCore inverts violationsWire.
func violationsCore(vs []Violation) []core.Violation {
	out := make([]core.Violation, 0, len(vs))
	for i := range vs {
		out = append(out, violationCore(&vs[i]))
	}
	return out
}

// buildEnvelope assembles the shared header for a schema over one core
// report. CheckNS is the summed stage durations — the engine-run cost of
// producing this state.
func buildEnvelope(schema string, rep *core.Report) Envelope {
	env := Envelope{
		Schema:      schema,
		Fingerprint: core.FingerprintDigest(rep),
	}
	if len(rep.Violations) > 0 {
		env.Classes = core.CountByClass(rep.Violations)
	}
	for _, s := range rep.Stats.Stages {
		env.CheckNS += s.Duration.Nanoseconds()
	}
	return env
}

// buildBody assembles the non-violation remainder shared by full reports
// and deltas.
func buildBody(rep *core.Report, eng *core.Engine) ReportBody {
	errs := rep.Errors()
	body := ReportBody{
		Design:   rep.Design.Name,
		Clean:    rep.Clean(),
		Errors:   len(errs),
		Warnings: len(rep.Violations) - len(errs),
	}
	for _, s := range rep.Stats.Stages {
		body.Stages = append(body.Stages, Stage{
			Name:       s.Name,
			DurationNS: s.Duration.Nanoseconds(),
			Checks:     s.Checks,
			Violations: s.Violations,
		})
	}
	st := rep.Stats
	body.Stats = Stats{
		ElementsChecked:        st.ElementsChecked,
		SymbolDefsChecked:      st.SymbolDefsChecked,
		DeviceInstances:        st.DeviceInstances,
		InteractionCandidates:  st.InteractionCandidates,
		InteractionChecked:     st.InteractionChecked,
		SkippedNoRule:          st.SkippedNoRule,
		SkippedSameNetExempt:   st.SkippedSameNetExempt,
		SkippedRelated:         st.SkippedRelated,
		SkippedConnectionPairs: st.SkippedConnectionPairs,
		ProcessDowngrades:      st.ProcessDowngrades,
	}
	if rep.Netlist != nil {
		body.Netlist = &Netlist{Nets: rep.Netlist.NumNets(), Devices: len(rep.Netlist.Devices)}
	}
	if eng != nil {
		body.Engine = engineWire(eng.Stats())
	}
	return body
}

// BuildReport projects a core.Report (and, when non-nil, the engine that
// produced it) into the wire form.
func BuildReport(rep *core.Report, eng *core.Engine) *Report {
	return &Report{
		Envelope:   buildEnvelope(SchemaReport, rep),
		ReportBody: buildBody(rep, eng),
		Violations: violationsWire(rep.Violations),
	}
}

// BuildDelta projects the current report as a delta against a known base
// state: base is the client's fingerprint, prev the violation sequence
// that state had. Added/Removed come from one sorted merge walk
// (core.DiffViolations) — the total order over violations makes the diff
// deterministic and O(prev+current).
func BuildDelta(base string, prev []core.Violation, rep *core.Report, eng *core.Engine) *ReportDelta {
	added, removed := core.DiffViolations(prev, rep.Violations)
	return &ReportDelta{
		Envelope:   buildEnvelope(SchemaReportDelta, rep),
		Base:       base,
		Added:      violationsWire(added),
		Removed:    violationsWire(removed),
		ReportBody: buildBody(rep, eng),
	}
}

// BuildResetDelta projects the current report as a reset delta — the
// fallback when the requested base fingerprint is unknown or already
// evicted from the bounded history: no base, Added carries everything.
func BuildResetDelta(rep *core.Report, eng *core.Engine) *ReportDelta {
	return &ReportDelta{
		Envelope:   buildEnvelope(SchemaReportDelta, rep),
		Reset:      true,
		Added:      violationsWire(rep.Violations),
		Removed:    []Violation{},
		ReportBody: buildBody(rep, eng),
	}
}

// severityRank orders wire severities the way core.CompareViolations
// orders core ones (error before warning).
func severityRank(s string) int {
	if s == core.Warning.String() {
		return 1
	}
	return 0
}

// compareWireViolations mirrors core.CompareViolations over the wire
// form, field for field, so a wire-side merge agrees byte-for-byte with
// the engine-side diff that produced the delta.
func compareWireViolations(a, b *Violation) int {
	cmpStr := func(x, y string) int {
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	}
	cmpInt := func(x, y int64) int {
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	}
	if c := cmpStr(a.Rule, b.Rule); c != 0 {
		return c
	}
	if c := cmpStr(a.Symbol, b.Symbol); c != 0 {
		return c
	}
	if c := cmpStr(a.Path, b.Path); c != 0 {
		return c
	}
	if c := cmpInt(a.Where.X1, b.Where.X1); c != 0 {
		return c
	}
	if c := cmpInt(a.Where.Y1, b.Where.Y1); c != 0 {
		return c
	}
	if c := cmpStr(a.Detail, b.Detail); c != 0 {
		return c
	}
	if c := cmpInt(a.Where.X2, b.Where.X2); c != 0 {
		return c
	}
	if c := cmpInt(a.Where.Y2, b.Where.Y2); c != 0 {
		return c
	}
	if c := severityRank(a.Severity) - severityRank(b.Severity); c != 0 {
		return c
	}
	if c := a.Layer - b.Layer; c != 0 {
		return c
	}
	if c := len(a.Nets) - len(b.Nets); c != 0 {
		// Prefix-compare first, length only breaks full-prefix ties — the
		// same rule slices.CompareFunc applies on the core side.
		for i := range min(len(a.Nets), len(b.Nets)) {
			if cc := cmpStr(a.Nets[i], b.Nets[i]); cc != 0 {
				return cc
			}
		}
		return c
	}
	for i := range a.Nets {
		if cc := cmpStr(a.Nets[i], b.Nets[i]); cc != 0 {
			return cc
		}
	}
	return 0
}

// ApplyDelta reconstructs the full report a delta describes. For a reset
// delta the base is ignored (Added is the complete list); otherwise base
// must be the report whose fingerprint the delta was computed against.
// The result is byte-identical to what GET .../report would have
// returned for the same state — fingerprint included — which the
// property tests assert by marshaling both.
func ApplyDelta(base *Report, d *ReportDelta) (*Report, error) {
	out := &Report{
		Envelope:   d.Envelope,
		ReportBody: d.ReportBody,
	}
	out.Schema = SchemaReport
	if d.Reset {
		out.Violations = append([]Violation{}, d.Added...)
		return out, nil
	}
	if base == nil {
		return nil, errors.New("apply delta: no base report for a non-reset delta")
	}
	if base.Fingerprint != d.Base {
		return nil, fmt.Errorf("apply delta: base fingerprint %s does not match delta base %s",
			base.Fingerprint, d.Base)
	}
	vs, err := patchViolations(base.Violations, d.Added, d.Removed)
	if err != nil {
		return nil, err
	}
	out.Violations = vs
	return out, nil
}

// patchViolations merges a sorted base sequence with a sorted diff:
// every removed entry must match one base entry (multiset semantics),
// added entries interleave by the wire total order.
func patchViolations(base, added, removed []Violation) ([]Violation, error) {
	kept := make([]Violation, 0, len(base))
	ri := 0
	for i := range base {
		if ri < len(removed) && compareWireViolations(&base[i], &removed[ri]) == 0 {
			ri++
			continue
		}
		kept = append(kept, base[i])
	}
	if ri != len(removed) {
		return nil, fmt.Errorf("apply delta: %d removed violations not present in base", len(removed)-ri)
	}
	out := make([]Violation, 0, len(kept)+len(added))
	i, j := 0, 0
	for i < len(kept) && j < len(added) {
		if compareWireViolations(&kept[i], &added[j]) <= 0 {
			out = append(out, kept[i])
			i++
		} else {
			out = append(out, added[j])
			j++
		}
	}
	out = append(out, kept[i:]...)
	out = append(out, added[j:]...)
	return out, nil
}

// CountRules tallies wire violations by rule name (the summary the CLI
// prints when not verbose).
func CountRules(vs []Violation) map[string]int {
	out := map[string]int{}
	for _, v := range vs {
		out[v.Rule]++
	}
	return out
}
