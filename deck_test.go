package dic_test

import (
	"os"
	"path/filepath"
	"testing"

	dic "repro"
	"repro/internal/deck"
	"repro/internal/tech"
)

// TestLoadDeckRoundTrip exercises the public deck path end to end: render
// the shipped CMOS technology back to deck text, load it from disk with
// LoadDeck, and demand a byte-identical report fingerprint for a checked
// chip — a user-authored deck file is a first-class technology.
func TestLoadDeckRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmos-copy.deck")
	if err := os.WriteFile(path, []byte(deck.Write(tech.ToDeck(dic.CMOS()))), 0o666); err != nil {
		t.Fatal(err)
	}
	loaded, err := dic.LoadDeck(path)
	if err != nil {
		t.Fatal(err)
	}
	fp := func(tc *dic.Technology) string {
		chip := dic.NewCMOSChip(tc, "roundtrip", 2, 3)
		rep, err := dic.Check(chip.Design, tc, dic.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return dic.Fingerprint(rep)
	}
	if fp(dic.CMOS()) != fp(loaded) {
		t.Fatal("deck written to disk and reloaded diverges from the embedded CMOS process")
	}
}

func TestLoadDeckRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.deck")
	if err := os.WriteFile(path, []byte("tech bad\nlayer a cif=XA\nspace a ghost diff=3\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := dic.LoadDeck(path); err == nil {
		t.Fatal("invalid deck loaded without error")
	}
}

func TestTechnologies(t *testing.T) {
	names := dic.Technologies()
	want := map[string]bool{"nmos": true, "bipolar": true, "cmos": true}
	if len(names) != len(want) {
		t.Fatalf("Technologies() = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected technology %q", n)
		}
	}
}
