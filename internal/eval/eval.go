// Package eval scores checker output against workload ground truth and
// runs the paper's evaluation scenarios. It is the measurement harness for
// the Figure 1 error economics: every violation is classified as
// real-flagged (region 2), false (region 3), and every injected error not
// reported is unchecked (region 1).
package eval

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/flat"
	"repro/internal/geom"
	"repro/internal/tech"
	"repro/internal/workload"
)

// Workers is the core.Options.Workers value every experiment passes to the
// DIC (0 = all cores, 1 = the serial reference sweep). cmd/drcbench sets
// it from -workers; the checker's report is identical either way, only the
// wall time changes.
var Workers int

// Outcome classifies one checker's output against ground truth.
type Outcome struct {
	Injected    int
	RealFlagged int // injections with at least one matching violation
	Missed      int // injections with none (region 1, unchecked)
	False       int // violations matching no injection (region 3)
	Violations  int // total violations reported
	Duration    time.Duration
}

// FalseToRealRatio returns the paper's headline metric.
func (o Outcome) FalseToRealRatio() float64 {
	if o.RealFlagged == 0 {
		if o.False == 0 {
			return 0
		}
		return float64(o.False)
	}
	return float64(o.False) / float64(o.RealFlagged)
}

// Effectiveness returns the detected fraction of injected errors.
func (o Outcome) Effectiveness() float64 {
	if o.Injected == 0 {
		return 1
	}
	return float64(o.RealFlagged) / float64(o.Injected)
}

// String renders a one-line summary.
func (o Outcome) String() string {
	return fmt.Sprintf("injected=%d flagged=%d missed=%d false=%d (false:real=%.1f, eff=%.0f%%) in %v",
		o.Injected, o.RealFlagged, o.Missed, o.False,
		o.FalseToRealRatio(), 100*o.Effectiveness(), o.Duration.Round(time.Millisecond))
}

// ruleMatches reports whether a violation rule matches any ground-truth
// prefix.
func ruleMatches(rule string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(rule, p) {
			return true
		}
	}
	return false
}

// locMatches reports whether a violation plausibly locates an injection:
// symbol-level errors match by symbol name; chip-level by box overlap with
// a tolerance halo.
func locMatches(inj *workload.Injected, where geom.Rect, symbol string) bool {
	if inj.Symbol != "" {
		return symbol == inj.Symbol || where.Expand(500).Touches(inj.Where)
	}
	return where.Expand(500).Touches(inj.Where)
}

// ScoreDIC classifies a DIC report against ground truth. Only
// error-severity violations count (warnings are advisory).
func ScoreDIC(injected []workload.Injected, rep *core.Report) Outcome {
	out := Outcome{Injected: len(injected)}
	detected := make([]bool, len(injected))
	for _, v := range rep.Errors() {
		out.Violations++
		matched := false
		for i := range injected {
			if ruleMatches(v.Rule, injected[i].DICRules) && locMatches(&injected[i], v.Where, v.Symbol) {
				detected[i] = true
				matched = true
			}
		}
		if !matched {
			out.False++
		}
	}
	for _, d := range detected {
		if d {
			out.RealFlagged++
		} else {
			out.Missed++
		}
	}
	return out
}

// ScoreFlat classifies a baseline report against ground truth.
func ScoreFlat(injected []workload.Injected, rep *flat.Report) Outcome {
	out := Outcome{Injected: len(injected), Duration: rep.Duration}
	detected := make([]bool, len(injected))
	for _, v := range rep.Violations {
		out.Violations++
		matched := false
		for i := range injected {
			if len(injected[i].FlatRules) == 0 {
				continue
			}
			if ruleMatches(v.Rule, injected[i].FlatRules) && locMatches(&injected[i], v.Where, "") {
				detected[i] = true
				matched = true
			}
		}
		if !matched {
			out.False++
		}
	}
	for _, d := range detected {
		if d {
			out.RealFlagged++
		} else {
			out.Missed++
		}
	}
	return out
}

// E1Result is one row of the error-economics experiment.
type E1Result struct {
	Rows, Cols int
	Devices    int
	Injected   int
	DIC        Outcome
	Flat       Outcome
}

// RunE1 builds a chip, injects errors, and runs both checkers.
func RunE1(tc *tech.Technology, rows, cols, nErrors int, seed int64) (E1Result, error) {
	chip := workload.NewChip(tc, fmt.Sprintf("e1-%dx%d", rows, cols), rows, cols)
	injected := workload.InjectErrors(chip, nErrors, seed)

	res := E1Result{Rows: rows, Cols: cols, Devices: chip.DeviceCount(), Injected: len(injected)}

	start := time.Now()
	dicRep, err := core.Check(chip.Design, tc, core.Options{Workers: Workers})
	if err != nil {
		return res, fmt.Errorf("dic: %w", err)
	}
	dicDur := time.Since(start)
	res.DIC = ScoreDIC(injected, dicRep)
	res.DIC.Duration = dicDur

	flatRep, err := flat.Check(chip.Design, tc, flat.Options{})
	if err != nil {
		return res, fmt.Errorf("flat: %w", err)
	}
	res.Flat = ScoreFlat(injected, flatRep)
	return res, nil
}

// PathologyResult records how both checkers treated one figure pathology.
type PathologyResult struct {
	Pathology workload.Pathology
	DICRules  map[string]int
	FlatRules map[string]int
	DICOk     bool // DIC behaved as the paper prescribes
	FlatAsDoc bool // baseline exhibited the documented failure
}

// RunPathology checks one pathology with both checkers and verifies the
// documented behaviour.
func RunPathology(p workload.Pathology) (PathologyResult, error) {
	res := PathologyResult{Pathology: p, DICRules: map[string]int{}, FlatRules: map[string]int{}}

	rep, err := core.Check(p.Design, p.Tech, core.Options{SkipConstruction: true, Workers: Workers})
	if err != nil {
		return res, err
	}
	for _, v := range rep.Errors() {
		res.DICRules[v.Rule]++
	}
	frep, err := flat.Check(p.Design, p.Tech, flat.Options{})
	if err != nil {
		return res, err
	}
	for _, v := range frep.Violations {
		res.FlatRules[v.Rule]++
	}

	res.DICOk = true
	for _, want := range p.ExpectDICRules {
		if !anyRuleWithPrefix(res.DICRules, want) {
			res.DICOk = false
		}
	}
	if len(p.ExpectDICRules) == 0 && len(res.DICRules) > 0 {
		res.DICOk = false
	}
	res.FlatAsDoc = true
	for _, want := range p.ExpectFlatRules {
		if !anyRuleWithPrefix(res.FlatRules, want) {
			res.FlatAsDoc = false
		}
	}
	if p.FlatMisses && len(res.FlatRules) > 0 {
		res.FlatAsDoc = false
	}
	return res, nil
}

func anyRuleWithPrefix(rules map[string]int, prefix string) bool {
	for r := range rules {
		if strings.HasPrefix(r, prefix) {
			return true
		}
	}
	return false
}
