package geom

import "sort"

// bseg is a directed boundary segment used during contour stitching.
type bseg struct {
	a, b Point
}

// Contours extracts the boundary loops of the region as rectilinear
// polygons with collinear vertices merged. Outer boundaries wind
// counterclockwise and hole boundaries clockwise, so the interior always
// lies to the left of the direction of travel. Loops are returned in
// deterministic order (sorted by their lowest-then-leftmost vertex).
func (r Region) Contours() []Polygon {
	if r.Empty() {
		return nil
	}
	var segs []bseg

	// Vertical boundary segments: the left end of every span travels
	// downward (interior on the left of -y is +x), the right end upward.
	for _, b := range r.bands {
		for _, s := range b.spans {
			segs = append(segs, bseg{Point{s.X1, b.y2}, Point{s.X1, b.y1}})
			segs = append(segs, bseg{Point{s.X2, b.y1}, Point{s.X2, b.y2}})
		}
	}

	// Horizontal boundary segments at each band boundary: covered above but
	// not below ⇒ bottom edge (+x); covered below but not above ⇒ top (-x).
	levels := make(map[int64][2][]Span) // y -> [coverage below, coverage above]
	for _, b := range r.bands {
		e := levels[b.y1]
		e[1] = b.spans
		levels[b.y1] = e
		e2 := levels[b.y2]
		e2[0] = b.spans
		levels[b.y2] = e2
	}
	ys := make([]int64, 0, len(levels))
	for y := range levels {
		ys = append(ys, y)
	}
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	diff := func(a, b []Span) []Span {
		return combineSpansInto(nil, a, b, opSubtract)
	}
	for _, y := range ys {
		e := levels[y]
		for _, s := range diff(e[1], e[0]) { // bottom edges, +x
			segs = append(segs, bseg{Point{s.X1, y}, Point{s.X2, y}})
		}
		for _, s := range diff(e[0], e[1]) { // top edges, -x
			segs = append(segs, bseg{Point{s.X2, y}, Point{s.X1, y}})
		}
	}

	// Horizontal segments produced by the span differences above may run
	// through interior corners of other loops; split both horizontal and
	// vertical segments at every potential vertex coordinate so stitching
	// sees exactly matching endpoints.
	xSet := make(map[int64]bool)
	ySet := make(map[int64]bool, len(ys))
	for _, y := range ys {
		ySet[y] = true
	}
	for _, b := range r.bands {
		for _, s := range b.spans {
			xSet[s.X1] = true
			xSet[s.X2] = true
		}
	}
	var split []bseg
	for _, s := range segs {
		if s.a.X == s.b.X {
			split = append(split, splitSegAt(s, ySet, false)...)
		} else {
			split = append(split, splitSegAt(s, xSet, true)...)
		}
	}
	segs = split

	// Stitch segments into loops. At a degree-4 vertex where two loops
	// touch (a crossing corner) the interior occupies two diagonal
	// quadrants; the turn that keeps each loop simple depends on which
	// pair: interior NE+SW needs the sharpest LEFT turn, interior NW+SE
	// the sharpest RIGHT. The NE cell membership discriminates (half-open
	// ContainsPoint(v) tests exactly the cell northeast of v).
	bySrc := make(map[Point][]int, len(segs))
	for i, s := range segs {
		bySrc[s.a] = append(bySrc[s.a], i)
	}
	used := make([]bool, len(segs))
	var loops []Polygon
	for start := range segs {
		if used[start] {
			continue
		}
		var verts []Point
		cur := start
		for {
			used[cur] = true
			verts = append(verts, segs[cur].a)
			v := segs[cur].b
			preferLeft := r.ContainsPoint(v)
			next := pickTurn(segs[cur].a, v, bySrc[v], used, segs, preferLeft)
			if next == -1 {
				break
			}
			cur = next
		}
		if p := mergeCollinear(verts); len(p) >= 4 {
			loops = append(loops, p)
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		a, b := loopKey(loops[i]), loopKey(loops[j])
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	return loops
}

// splitSegAt splits a segment at every coordinate in cuts that falls
// strictly inside it, preserving direction. horizontal selects which axis
// the cut coordinates apply to.
func splitSegAt(s bseg, cuts map[int64]bool, horizontal bool) []bseg {
	var lo, hi int64
	if horizontal {
		lo, hi = s.a.X, s.b.X
	} else {
		lo, hi = s.a.Y, s.b.Y
	}
	rev := false
	if lo > hi {
		lo, hi = hi, lo
		rev = true
	}
	var inner []int64
	for c := range cuts {
		if lo < c && c < hi {
			inner = append(inner, c)
		}
	}
	if len(inner) == 0 {
		return []bseg{s}
	}
	sort.Slice(inner, func(i, j int) bool { return inner[i] < inner[j] })
	pts := make([]int64, 0, len(inner)+2)
	pts = append(pts, lo)
	pts = append(pts, inner...)
	pts = append(pts, hi)
	if rev {
		for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
			pts[i], pts[j] = pts[j], pts[i]
		}
	}
	out := make([]bseg, 0, len(pts)-1)
	for i := 0; i+1 < len(pts); i++ {
		if horizontal {
			out = append(out, bseg{Point{pts[i], s.a.Y}, Point{pts[i+1], s.a.Y}})
		} else {
			out = append(out, bseg{Point{s.a.X, pts[i]}, Point{s.a.X, pts[i+1]}})
		}
	}
	return out
}

// pickTurn chooses the unused candidate segment continuing from b, given
// the incoming direction a→b. preferLeft selects whether the sharpest left
// or sharpest right turn keeps the loop simple at crossing vertices;
// straight continuations rank between the two turn directions either way.
func pickTurn(a, b Point, cands []int, used []bool, segs []bseg, preferLeft bool) int {
	in := b.Sub(a)
	best, bestRank := -1, -3
	for _, c := range cands {
		if used[c] {
			continue
		}
		out := segs[c].b.Sub(segs[c].a)
		cross := in.Cross(out)
		dot := in.Dot(out)
		var rank int
		switch {
		case cross > 0:
			rank = 2 // left turn
		case cross == 0 && dot > 0:
			rank = 1 // straight
		case cross == 0:
			rank = -2 // U-turn
		default:
			rank = 0 // right turn
		}
		if !preferLeft && (rank == 2 || rank == 0) {
			rank = 2 - rank // swap left/right preference
		}
		if rank > bestRank {
			bestRank, best = rank, c
		}
	}
	return best
}

// mergeCollinear removes vertices interior to straight runs.
func mergeCollinear(verts []Point) Polygon {
	if len(verts) < 3 {
		return Polygon(verts)
	}
	var out Polygon
	n := len(verts)
	for i := 0; i < n; i++ {
		prev := verts[(i-1+n)%n]
		cur := verts[i]
		next := verts[(i+1)%n]
		if cur.Sub(prev).Cross(next.Sub(cur)) != 0 {
			out = append(out, cur)
		}
	}
	return out
}

func loopKey(p Polygon) Point {
	if len(p) == 0 {
		return Point{}
	}
	best := p[0]
	for _, q := range p[1:] {
		if q.Y < best.Y || (q.Y == best.Y && q.X < best.X) {
			best = q
		}
	}
	return best
}
