#!/usr/bin/env bash
# Integration smoke for the check service: build the real binaries, start
# dicheckd on a random port, and drive a scripted session through the HTTP
# API — upload the generated CMOS chip (clean), apply an accidental-
# transistor edit (violation appears), revert it (clean again), then a
# sub-minimum-width wire (the WIDTH.CM region kernel fires and the
# per-class summary counts it) — asserting fingerprint parity with
# offline runs replaying the same edit script at every step, plus the
# report-delta path (?since= answers only added/removed, fingerprint-
# asserted against the offline replay), the one-release 308 redirects
# from the unprefixed paths, and the debounce bound (an edit burst
# costs at most 2 rechecks).
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
bin="$work/bin"
cleanup() {
  [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# jq-free JSON field extraction (top-level scalar fields of pretty-printed
# output). Usage: field FILE NAME
field() { sed -n "s/^  \"$2\": \"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$1" | head -1; }

echo "== build"
mkdir -p "$bin"
go build -o "$bin/" ./cmd/dicheckd ./cmd/dicheck ./cmd/cifgen

echo "== generate workload"
"$bin/cifgen" -tech cmos -rows 4 -cols 4 -o "$work/chip.cif"

cat > "$work/break.json" <<'EOF'
[{"op":"add_wire","symbol":"chip","layer":"poly","width":200,"path":[3200,-400,3200,400]}]
EOF
cat > "$work/revert.json" <<'EOF'
[{"op":"delete_element","symbol":"chip","index":-1}]
EOF
cat > "$work/narrow.json" <<'EOF'
[{"op":"add_wire","symbol":"chip","layer":"metal","width":200,"path":[0,-5000,1000,-5000]}]
EOF

echo "== start daemon"
"$bin/dicheckd" -addr 127.0.0.1:0 -addr-file "$work/addr" -debounce 200ms &
daemon_pid=$!
for _ in $(seq 100); do [ -s "$work/addr" ] && break; sleep 0.1; done
[ -s "$work/addr" ] || fail "daemon never wrote its address"
base="http://$(cat "$work/addr")"
echo "   daemon at $base"
curl -sf "$base/v1/healthz" > /dev/null || fail "healthz"

# Step 1: offline baseline — clean chip, exit 0, fingerprint A.
echo "== offline baseline"
"$bin/dicheck" -tech cmos -json "$work/chip.cif" > "$work/offline-clean.json" \
  || fail "offline check of the clean chip exited $?"
fp_offline_clean=$(field "$work/offline-clean.json" fingerprint)
[ -n "$fp_offline_clean" ] || fail "no offline fingerprint"

# Step 2: served one-shot — same design, same fingerprint, exit 0.
echo "== served one-shot (clean)"
"$bin/dicheck" -tech cmos -serve "$base" -json "$work/chip.cif" > "$work/served-clean.json" \
  || fail "served check of the clean chip exited $?"
[ "$(field "$work/served-clean.json" clean)" = "true" ] || fail "served report not clean"
fp_served_clean=$(field "$work/served-clean.json" fingerprint)
[ "$fp_served_clean" = "$fp_offline_clean" ] \
  || fail "clean fingerprint mismatch: served $fp_served_clean offline $fp_offline_clean"

# Step 3: persistent session, then the violating edit. The served report
# must flag the accidental transistor and match the offline replay of the
# same edit script, and dicheck must exit 1 on it.
echo "== persistent session + violating edit"
"$bin/dicheck" -tech cmos -serve "$base" -session smoke -json "$work/chip.cif" > /dev/null \
  || fail "session create exited $?"
set +e
"$bin/dicheck" -serve "$base" -session smoke -edits "$work/break.json" -json > "$work/served-broken.json"
rc=$?
set -e
[ "$rc" = 1 ] || fail "served broken check exited $rc, want 1"
grep -q '"rule": "DEV.ACCIDENTAL"' "$work/served-broken.json" \
  || fail "DEV.ACCIDENTAL not reported by the service"
set +e
"$bin/dicheck" -tech cmos -edits "$work/break.json" -json "$work/chip.cif" > "$work/offline-broken.json"
rc=$?
set -e
[ "$rc" = 1 ] || fail "offline broken check exited $rc, want 1"
fp_served_broken=$(field "$work/served-broken.json" fingerprint)
fp_offline_broken=$(field "$work/offline-broken.json" fingerprint)
[ -n "$fp_served_broken" ] && [ "$fp_served_broken" = "$fp_offline_broken" ] \
  || fail "broken fingerprint mismatch: served $fp_served_broken offline $fp_offline_broken"

# Step 4: revert — clean again, byte-identical to the initial state.
echo "== revert"
"$bin/dicheck" -serve "$base" -session smoke -edits "$work/revert.json" -json > "$work/served-reverted.json" \
  || fail "served reverted check exited $?"
fp_reverted=$(field "$work/served-reverted.json" fingerprint)
[ "$fp_reverted" = "$fp_offline_clean" ] \
  || fail "revert fingerprint mismatch: $fp_reverted vs $fp_offline_clean"

# Step 5: width rule round-trip — a 200-wide metal wire (rule: 3λ = 300)
# must trip both the per-element W.CM check and the merged-region WIDTH.CM
# kernel through the daemon, with the per-class summary counting them
# under "width" and the fingerprint matching the offline replay.
echo "== width violation round-trip"
set +e
"$bin/dicheck" -serve "$base" -session smoke -edits "$work/narrow.json" -json > "$work/served-narrow.json"
rc=$?
set -e
[ "$rc" = 1 ] || fail "served narrow-wire check exited $rc, want 1"
grep -q '"rule": "WIDTH.CM"' "$work/served-narrow.json" \
  || fail "WIDTH.CM not reported by the service"
grep -q '"width": 2' "$work/served-narrow.json" \
  || fail "per-class summary does not count the two width findings"
set +e
"$bin/dicheck" -tech cmos -edits "$work/narrow.json" -json "$work/chip.cif" > "$work/offline-narrow.json"
rc=$?
set -e
[ "$rc" = 1 ] || fail "offline narrow-wire check exited $rc, want 1"
fp_served_narrow=$(field "$work/served-narrow.json" fingerprint)
fp_offline_narrow=$(field "$work/offline-narrow.json" fingerprint)
[ -n "$fp_served_narrow" ] && [ "$fp_served_narrow" = "$fp_offline_narrow" ] \
  || fail "narrow fingerprint mismatch: served $fp_served_narrow offline $fp_offline_narrow"
"$bin/dicheck" -serve "$base" -session smoke -edits "$work/revert.json" -json > /dev/null \
  || fail "narrow revert exited $?"

# Step 6: report deltas — break the session again and fetch the change
# as a delta against the clean fingerprint. The delta must carry only
# the new finding (added, nothing removed), name its base, and its
# envelope fingerprint must match the offline replay of the same edit —
# the contract that base + delta reconstructs the full report. Then
# revert and diff the other way (removed, nothing added), and finally
# probe the reset fallback with a fingerprint the daemon never served.
echo "== report deltas"
sid=$(curl -sf "$base/v1/sessions" | sed -n 's/^    "id": "\(s[0-9]*\)",$/\1/p' | head -1)
[ -n "$sid" ] || fail "no session id in listing"
curl -sf "$base/v1/sessions/$sid/report" > "$work/delta-base.json"
fp_base=$(field "$work/delta-base.json" fingerprint)
[ "$fp_base" = "$fp_offline_clean" ] || fail "delta base fingerprint $fp_base is not the clean state"
curl -sf -X POST "$base/v1/sessions/$sid/edits" \
  -d '{"edits":[{"op":"add_wire","symbol":"chip","layer":"poly","width":200,"path":[3200,-400,3200,400]}]}' \
  > /dev/null || fail "delta break edit"
curl -sf "$base/v1/sessions/$sid/report?since=$fp_base" > "$work/delta-fwd.json" || fail "delta fetch"
grep -q '"schema": "report-delta/v1"' "$work/delta-fwd.json" || fail "delta lacks its schema tag"
[ "$(field "$work/delta-fwd.json" base)" = "$fp_base" ] || fail "delta does not name its base"
grep -q '"reset": true' "$work/delta-fwd.json" && fail "known base answered a reset delta"
grep -q '"rule": "DEV.ACCIDENTAL"' "$work/delta-fwd.json" || fail "delta does not add DEV.ACCIDENTAL"
grep -q '"removed": \[\]' "$work/delta-fwd.json" || fail "forward delta removed something from a clean base"
fp_delta=$(field "$work/delta-fwd.json" fingerprint)
[ "$fp_delta" = "$fp_offline_broken" ] \
  || fail "delta fingerprint $fp_delta != offline broken replay $fp_offline_broken"
curl -sf -X POST "$base/v1/sessions/$sid/edits" \
  -d '{"edits":[{"op":"delete_element","symbol":"chip","index":-1}]}' > /dev/null || fail "delta revert edit"
curl -sf "$base/v1/sessions/$sid/report?since=$fp_delta" > "$work/delta-rev.json" || fail "reverse delta fetch"
grep -q '"added": \[\]' "$work/delta-rev.json" || fail "reverse delta added something"
grep -q '"rule": "DEV.ACCIDENTAL"' "$work/delta-rev.json" || fail "reverse delta does not remove DEV.ACCIDENTAL"
[ "$(field "$work/delta-rev.json" fingerprint)" = "$fp_offline_clean" ] \
  || fail "reverse delta fingerprint is not the clean state"
curl -sf "$base/v1/sessions/$sid/report?since=no-such-fingerprint" > "$work/delta-reset.json" \
  || fail "reset delta fetch"
grep -q '"reset": true' "$work/delta-reset.json" || fail "unknown base did not answer a reset delta"
[ "$(field "$work/delta-reset.json" fingerprint)" = "$fp_offline_clean" ] \
  || fail "reset delta fingerprint is not the full current state"

# Step 7: the unprefixed paths stay up for one deprecation release as
# 308 redirects that preserve method, path, and query string.
echo "== deprecated unprefixed paths answer 308"
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/healthz")
[ "$code" = 308 ] || fail "unprefixed /healthz answered $code, want 308"
loc=$(curl -s -D - -o /dev/null "$base/sessions/$sid/report?since=$fp_base" \
  | sed -n 's/^[Ll]ocation: \(.*\)$/\1/p' | tr -d '\r')
[ "$loc" = "/v1/sessions/$sid/report?since=$fp_base" ] \
  || fail "redirect Location '$loc' does not preserve path and query"
curl -sfL "$base/healthz" > /dev/null || fail "redirect-following client cannot reach healthz"

# Step 8: debounce — a 10-edit no-net-motion burst straight at the API
# must cost at most 2 rechecks (observable via /stats).
echo "== debounce burst"
before=$(curl -sf "$base/v1/sessions/$sid/stats" | sed -n 's/^    "rechecks": \([0-9]*\),\{0,1\}$/\1/p')
for i in $(seq 5); do
  curl -sf -X POST "$base/v1/sessions/$sid/edits" -d '{"edits":[{"op":"move_element","symbol":"chip","index":-1,"dy":100}]}' > /dev/null
  curl -sf -X POST "$base/v1/sessions/$sid/edits" -d '{"edits":[{"op":"move_element","symbol":"chip","index":-1,"dy":-100}]}' > /dev/null
done
curl -sf "$base/v1/sessions/$sid/report" > "$work/burst-report.json"
curl -sf "$base/v1/sessions/$sid/stats" > "$work/burst-stats.json"
after=$(sed -n 's/^    "rechecks": \([0-9]*\),\{0,1\}$/\1/p' "$work/burst-stats.json")
burst=$((after - before))
[ "$burst" -le 2 ] || fail "10-edit burst cost $burst rechecks (want <= 2)"
grep -q '"clean": true' "$work/burst-report.json" || fail "burst end state not clean"

# The stats payload must expose the recheck timings, the size of the burst
# the last flush absorbed, and the engine's context-cache counters.
last_ns=$(sed -n 's/^    "last_recheck_ns": \([0-9]*\),\{0,1\}$/\1/p' "$work/burst-stats.json")
[ -n "$last_ns" ] && [ "$last_ns" -gt 0 ] || fail "stats lack a positive last_recheck_ns"
total_ns=$(sed -n 's/^    "total_recheck_ns": \([0-9]*\),\{0,1\}$/\1/p' "$work/burst-stats.json")
[ -n "$total_ns" ] && [ "$total_ns" -ge "$last_ns" ] || fail "stats lack a sane total_recheck_ns"
flush_batches=$(sed -n 's/^    "last_flush_batches": \([0-9]*\),\{0,1\}$/\1/p' "$work/burst-stats.json")
[ -n "$flush_batches" ] && [ "$flush_batches" -ge 1 ] && [ "$flush_batches" -le 10 ] \
  || fail "last_flush_batches '$flush_batches' does not reflect the burst"
grep -q '"ctx_hits":' "$work/burst-stats.json" || fail "stats lack ctx_hits"
grep -q '"ctx_misses":' "$work/burst-stats.json" || fail "stats lack ctx_misses"

# Step 9: lifecycle cleanup through the API.
echo "== delete session"
curl -sf -X DELETE "$base/v1/sessions/$sid" > /dev/null || fail "delete"
curl -s "$base/v1/sessions/$sid/report" | grep -q '"error"' || fail "deleted session still serves reports"

echo "PASS: integration smoke (clean -> violating -> clean, fingerprint parity, deltas, burst cost $burst rechecks)"
