package perfbench

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ParseSnapshot reads a BENCH_<date>.json document.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("perfbench: parse snapshot: %w", err)
	}
	if len(s.Results) == 0 {
		return Snapshot{}, fmt.Errorf("perfbench: snapshot has no results")
	}
	return s, nil
}

// Delta is one benchmark's old-vs-new comparison. A benchmark present in
// only one snapshot appears with the other side zeroed and InBoth false.
type Delta struct {
	Name      string
	OldNs     float64
	NewNs     float64
	PctNs     float64 // (new-old)/old * 100; 0 when not in both
	OldAllocs int64
	NewAllocs int64
	InBoth    bool
	OnlyInOld bool
	OnlyInNew bool
}

// Compare matches benchmarks by name, preserving the new snapshot's order
// and appending benchmarks that exist only in the old one.
func Compare(old, cur Snapshot) []Delta {
	oldBy := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	seen := make(map[string]bool, len(cur.Results))
	var out []Delta
	for _, r := range cur.Results {
		seen[r.Name] = true
		d := Delta{Name: r.Name, NewNs: r.NsPerOp, NewAllocs: r.AllocsOp}
		if o, ok := oldBy[r.Name]; ok {
			d.InBoth = true
			d.OldNs = o.NsPerOp
			d.OldAllocs = o.AllocsOp
			if o.NsPerOp > 0 {
				d.PctNs = (r.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
			}
		} else {
			d.OnlyInNew = true
		}
		out = append(out, d)
	}
	for _, r := range old.Results {
		if !seen[r.Name] {
			out = append(out, Delta{Name: r.Name, OldNs: r.NsPerOp, OldAllocs: r.AllocsOp, OnlyInOld: true})
		}
	}
	return out
}

// RenderDeltas formats a comparison as the informational table the CI
// bench-compare step prints. Timings are wall-clock on shared runners, so
// the table is advice, not a gate — allocation counts are the stable
// signal.
func RenderDeltas(old, cur Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark deltas vs %s snapshot (%s, %d CPU -> %s, %d CPU):\n",
		old.Date, old.GoVersion, old.NumCPU, cur.GoVersion, cur.NumCPU)
	for _, d := range Compare(old, cur) {
		switch {
		case d.OnlyInNew:
			fmt.Fprintf(&b, "  %-22s %31s -> %10.2fms   allocs %s -> %d (new benchmark)\n",
				d.Name, "", d.NewNs/1e6, "-", d.NewAllocs)
		case d.OnlyInOld:
			fmt.Fprintf(&b, "  %-22s %10.2fms -> %-18s allocs %d -> %s (benchmark removed)\n",
				d.Name, d.OldNs/1e6, "gone", d.OldAllocs, "-")
		default:
			fmt.Fprintf(&b, "  %-22s %10.2fms -> %10.2fms  %+7.1f%%   allocs %d -> %d\n",
				d.Name, d.OldNs/1e6, d.NewNs/1e6, d.PctNs, d.OldAllocs, d.NewAllocs)
		}
	}
	return b.String()
}
