package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cif"
	"repro/internal/geom"
	"repro/internal/tech"
	"repro/internal/workload"
)

// TestRotatedInstancesStayClean places the verified-clean inverter cell
// under all eight Manhattan orientations, far enough apart not to
// interact. Every orientation must check clean: the pipeline must be
// transform-invariant (symbol-level checks are shared; instance-level
// geometry is transformed exactly).
func TestRotatedInstancesStayClean(t *testing.T) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "rot", 1, 1)
	d := chip.Design
	cell, ok := d.Symbol("inv")
	if !ok {
		t.Fatal("inv cell missing")
	}
	top := d.Top
	for o := geom.Orient(0); o < 8; o++ {
		top.AddCall(cell, geom.NewTransform(o, geom.Pt(int64(o+1)*40000, 40000)), fmt.Sprintf("o%d", o))
	}
	rep, err := Check(d, tc, Options{SkipConstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Errors() {
		t.Errorf("rotated instance broke: %v", v)
	}
}

// TestDeepHierarchy nests one clean cell under ten wrapper levels: the
// pipeline must stay clean, definition-level work must stay constant, and
// the dot-notation instance paths must carry the full depth.
func TestDeepHierarchy(t *testing.T) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "deep", 1, 1)
	d := chip.Design
	inner := d.Top
	for i := 0; i < 10; i++ {
		wrap := d.MustSymbol(fmt.Sprintf("wrap%d", i))
		wrap.AddCall(inner, geom.Identity, fmt.Sprintf("w%d", i))
		inner = wrap
	}
	d.Top = inner
	rep, err := Check(d, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Errors() {
		t.Errorf("deep hierarchy broke: %v", v)
	}
	// Wrapping must not add definition-level checks beyond the wrappers'
	// (empty) element lists.
	if rep.Stats.SymbolDefsChecked != 6 {
		t.Fatalf("device defs checked = %d, want 6", rep.Stats.SymbolDefsChecked)
	}
	// Device paths carry all ten wrapper levels.
	found := false
	for _, dev := range rep.Netlist.Devices {
		if strings.Count(dev.Path, ".") >= 10 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no deep dot-notation path; sample: %q", rep.Netlist.Devices[0].Path)
	}
}

// TestCheckedDeviceEndToEnd exercises the paper's "flag specific devices
// as checked" mechanism through the whole stack: a rule-breaking device
// marked CHK passes the pipeline, survives a CIF round trip, and still
// contributes its terminals to the netlist; without CHK it is flagged.
func TestCheckedDeviceEndToEnd(t *testing.T) {
	tc := tech.NMOS()
	build := func(checked bool) string {
		chk := ""
		if checked {
			chk = " CHK"
		}
		return fmt.Sprintf(`
DS 1; 9 oddball; 9D nmos-enh%s;
L NP; B 500 500 0 0;
L ND; B 2000 500 0 0;
DF;
DS 2; 9 top;
9I u1;
C 1;
DF;
E`, chk)
	}

	// Unchecked: the missing gate extension is flagged.
	d1, err := cif.Parse(build(false), tc, "t")
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := Check(d1, tc, Options{SkipConstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	if CountByRule(rep1.Violations)["DEV.MOS.GATEEXT"] == 0 {
		t.Fatalf("unchecked oddball not flagged: %v", rep1.Violations)
	}

	// Checked: clean, and the device still extracts.
	d2, err := cif.Parse(build(true), tc, "t")
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Check(d2, tc, Options{SkipConstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() {
		t.Fatalf("checked oddball flagged: %v", rep2.Errors())
	}
	if len(rep2.Netlist.Devices) != 1 {
		t.Fatalf("checked device missing from netlist: %s", rep2.Netlist.Stats())
	}

	// The CHK flag survives writing and re-parsing.
	text, err := cif.Write(d2, tc)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := cif.Parse(text, tc, "t")
	if err != nil {
		t.Fatal(err)
	}
	odd, ok := d3.Symbol("oddball")
	if !ok || !odd.Checked {
		t.Fatalf("CHK lost in round trip:\n%s", text)
	}
}
