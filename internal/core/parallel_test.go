package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/workload"
)

// interactionCounters extracts the order-independent Stats counters that
// must be invariant under sharding.
func interactionCounters(st Stats) [8]int {
	return [8]int{
		st.InteractionCandidates,
		st.InteractionChecked,
		st.SkippedNoRule,
		st.SkippedSameNetExempt,
		st.SkippedRelated,
		st.SkippedConnectionPairs,
		st.ProcessDowngrades,
		stageChecks(st, "check interactions"),
	}
}

func stageChecks(st Stats, name string) int {
	for _, s := range st.Stages {
		if s.Name == name {
			return s.Checks
		}
	}
	return -1
}

// requireIdentical runs Check with Workers:1 (the serial oracle) and with
// several parallel worker counts, and demands identical violation lists
// and identical interaction counters.
func requireIdentical(t *testing.T, label string, d *layout.Design, tc *tech.Technology, opts Options) {
	t.Helper()
	opts.Workers = 1
	serial, err := Check(d, tc, opts)
	if err != nil {
		t.Fatalf("%s: serial check: %v", label, err)
	}
	for _, workers := range []int{2, 3, 8} {
		opts.Workers = workers
		par, err := Check(d, tc, opts)
		if err != nil {
			t.Fatalf("%s: workers=%d: %v", label, workers, err)
		}
		if !reflect.DeepEqual(serial.Violations, par.Violations) {
			t.Errorf("%s: workers=%d violation list diverges from serial (%d vs %d violations)",
				label, workers, len(par.Violations), len(serial.Violations))
			for i := range serial.Violations {
				if i >= len(par.Violations) || !reflect.DeepEqual(serial.Violations[i], par.Violations[i]) {
					t.Fatalf("%s: first divergence at %d:\n  serial: %v\n  parallel: %v",
						label, i, serial.Violations[i], violationAt(par.Violations, i))
				}
			}
			t.FailNow()
		}
		if sc, pc := interactionCounters(serial.Stats), interactionCounters(par.Stats); sc != pc {
			t.Fatalf("%s: workers=%d stats diverge: serial %v, parallel %v", label, workers, sc, pc)
		}
	}
}

func violationAt(vs []Violation, i int) any {
	if i < len(vs) {
		return vs[i]
	}
	return "(missing)"
}

// TestParallelDeterminismChips covers clean and error-injected generated
// chips at several sizes, under the default options and the ablation and
// metric variants.
func TestParallelDeterminismChips(t *testing.T) {
	tc := tech.NMOS()
	for _, size := range []struct{ rows, cols int }{{2, 3}, {4, 5}, {8, 8}} {
		clean := workload.NewChip(tc, "par-clean", size.rows, size.cols)
		requireIdentical(t, fmt.Sprintf("clean %dx%d", size.rows, size.cols),
			clean.Design, tc, Options{})

		dirty := workload.NewChip(tc, "par-dirty", size.rows, size.cols)
		inj := workload.InjectErrors(dirty, 3*size.rows, 1980)
		if len(inj) == 0 {
			t.Fatal("no errors injected")
		}
		requireIdentical(t, fmt.Sprintf("injected %dx%d", size.rows, size.cols),
			dirty.Design, tc, Options{})
		requireIdentical(t, fmt.Sprintf("injected %dx%d ortho", size.rows, size.cols),
			dirty.Design, tc, Options{Metric: Orthogonal})
		requireIdentical(t, fmt.Sprintf("injected %dx%d no-exemptions", size.rows, size.cols),
			dirty.Design, tc, Options{NoExemptions: true})
	}
}

// TestParallelDeterminismPathologies runs every paper-figure pathology
// through the oracle and the sharded engine.
func TestParallelDeterminismPathologies(t *testing.T) {
	for _, p := range workload.AllPathologies() {
		requireIdentical(t, "pathology "+p.Name, p.Design, p.Tech,
			Options{SkipConstruction: true})
	}
}

// Workers:0 (all cores) must behave like any other explicit count.
func TestParallelDefaultWorkers(t *testing.T) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "par-default", 4, 6)
	workload.InjectErrors(chip, 8, 7)
	serial, err := Check(chip.Design, tc, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Check(chip.Design, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Violations, auto.Violations) {
		t.Fatalf("Workers:0 diverges from serial: %d vs %d violations",
			len(auto.Violations), len(serial.Violations))
	}
}
