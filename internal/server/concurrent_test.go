package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cif"
	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/workload"
)

// TestConcurrentSessions hammers the daemon under -race: 8 independent
// sessions driven from their own goroutines with interleaved edits and
// reports, plus one shared session with three goroutines racing edits,
// reports, and stats against each other — locking in that per-session
// engine access is serialized while sessions stay independent.
func TestConcurrentSessions(t *testing.T) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "conc", 2, 2)
	text, err := cif.Write(chip.Design, tc)
	if err != nil {
		t.Fatal(err)
	}
	// A short debounce keeps the background timer path racing with the
	// report-flush path, which is exactly the interleaving to stress.
	_, c := newTestServer(t, Config{Debounce: time.Millisecond, MaxSessions: 32})

	const sessions = 8
	const editsPerSession = 6
	var wg sync.WaitGroup
	errs := make(chan error, sessions*4)

	drive := func(name string) {
		defer wg.Done()
		created, err := c.SessionCreate(context.Background(), CreateRequest{Name: name, CIF: text, Tech: "nmos"})
		if err != nil {
			errs <- fmt.Errorf("%s: create: %w", name, err)
			return
		}
		want := created.Report.Fingerprint
		for i := 0; i < editsPerSession; i++ {
			dy := int64(50)
			if i%2 == 1 {
				dy = -50
			}
			if _, err := c.SessionEdit(context.Background(), created.ID, []layout.Edit{{
				Op: layout.OpMoveElement, Symbol: "chip", Index: -1, DY: dy,
			}}); err != nil {
				errs <- fmt.Errorf("%s: edit %d: %w", name, i, err)
				return
			}
			if i%2 == 1 {
				// Back at the start state: the report must match the
				// initial fingerprint exactly, however the flushes and
				// timers interleaved.
				rep, err := c.SessionReport(context.Background(), created.ID)
				if err != nil {
					errs <- fmt.Errorf("%s: report %d: %w", name, i, err)
					return
				}
				if rep.Fingerprint != want {
					errs <- fmt.Errorf("%s: fingerprint drifted at edit %d", name, i)
					return
				}
			}
		}
		if err := c.SessionDelete(context.Background(), created.ID); err != nil {
			errs <- fmt.Errorf("%s: delete: %w", name, err)
		}
	}

	wg.Add(sessions)
	for i := 0; i < sessions; i++ {
		go drive(fmt.Sprintf("sess%d", i))
	}

	// One extra session shared by racing writers and readers.
	shared, err := c.SessionCreate(context.Background(), CreateRequest{Name: "shared", CIF: text, Tech: "nmos"})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			dy := int64(50)
			if i%2 == 1 {
				dy = -50
			}
			if _, err := c.SessionEdit(context.Background(), shared.ID, []layout.Edit{{
				Op: layout.OpMoveElement, Symbol: "chip", Index: -1, DY: dy,
			}}); err != nil {
				errs <- fmt.Errorf("shared edit: %w", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.SessionReport(context.Background(), shared.ID); err != nil {
				errs <- fmt.Errorf("shared report: %w", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.SessionStats(context.Background(), shared.ID); err != nil {
				errs <- fmt.Errorf("shared stats: %w", err)
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() {
		time.Sleep(500 * time.Millisecond)
		close(stop)
		close(done)
	}()
	<-done
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
