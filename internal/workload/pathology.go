package workload

import (
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Pathology is a small layout reproducing one of the paper's figures, with
// the behaviour each checker should exhibit.
type Pathology struct {
	Name   string
	Figure string // paper figure reference
	Design *layout.Design
	Tech   *tech.Technology

	// ExpectDICRules are rule prefixes the DIC must report (empty = clean).
	ExpectDICRules []string
	// ExpectFlatRules are rule prefixes the baseline must report.
	ExpectFlatRules []string
	// FlatMisses marks behaviour the baseline cannot see (region 1 of
	// Figure 1); FlatFalse marks baseline reports on legal layout
	// (region 3).
	FlatMisses bool
	FlatFalse  bool
	Notes      string
}

// Figure2LegalFiguresIllegalComposite builds two individually legal poly
// figures whose union contains an illegal 400-notch (the rule is 500). The
// union-first baseline sees one clean component; the DIC reports the
// butting construction and the too-close spacing.
func Figure2LegalFiguresIllegalComposite() Pathology {
	tc := tech.NMOS()
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	d := layout.NewDesign("fig2a")
	top := d.MustSymbol("top")
	// An L-shaped polygon: bottom bar plus left arm. Legal width (500).
	top.AddPolygon(polyL, geom.Poly(0, 0, 2000, 0, 2000, 500, 500, 500, 500, 2500, 0, 2500), "")
	// A rect abutting the bottom bar, 400 away from the left arm.
	top.AddBox(polyL, geom.R(900, 500, 1400, 2500), "")
	d.Top = top
	return Pathology{
		Name: "legal-figures-illegal-composite", Figure: "Figure 2 (left)",
		Design: d, Tech: tc,
		ExpectDICRules:  []string{"S.NP.NP"},
		ExpectFlatRules: nil,
		FlatMisses:      true,
		Notes:           "each figure is legal; the union has a 400 notch the union-first baseline cannot see",
	}
}

// Figure2NarrowFiguresLegalComposite builds two half-width boxes butting
// into a legal-width composite (also the Figure 15 self-sufficiency
// violation). The DIC flags each narrow element; the baseline unions them
// into clean geometry and reports nothing.
func Figure2NarrowFiguresLegalComposite() Pathology {
	tc := tech.NMOS()
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("fig2b")
	top := d.MustSymbol("top")
	top.AddBox(diffL, geom.R(0, 0, 2000, 250), "")   // half of min width 500
	top.AddBox(diffL, geom.R(0, 250, 2000, 500), "") // the other half
	d.Top = top
	return Pathology{
		Name: "narrow-figures-legal-composite", Figure: "Figure 2 (right) / Figure 15",
		Design: d, Tech: tc,
		ExpectDICRules:  []string{"W.ND"},
		ExpectFlatRules: nil,
		FlatMisses:      true,
		Notes:           "self-sufficiency: each element must be legal alone; the union hides the construction",
	}
}

// Figure5ElectricalEquivalence builds two diffusion pads on the same net
// (tied through contacts and metal) spaced 2λ apart where the rule is 3λ.
// The DIC skips the same-net subcase; the netless baseline reports a
// spacing error — a false error.
func Figure5ElectricalEquivalence() Pathology {
	tc := tech.NMOS()
	metalL, _ := tc.LayerByName(tech.NMOSMetal)
	d := layout.NewDesign("fig5a")
	c1 := device.NewDiffContact(d, tc, "c1")
	c2 := device.NewDiffContact(d, tc, "c2")
	top := d.MustSymbol("top")
	top.AddCall(c1, geom.Translate(geom.Pt(500, 500)), "c1")
	top.AddCall(c2, geom.Translate(geom.Pt(2000, 500)), "c2")
	// The two 1000-wide diffusion pads sit at x [0,1000] and [1500,2500]:
	// 500 apart, rule 750 — but one metal wire ties them into one net.
	top.AddWire(metalL, 750, "eq", geom.Pt(300, 500), geom.Pt(2200, 500))
	d.Top = top
	return Pathology{
		Name: "electrical-equivalence", Figure: "Figure 5a",
		Design: d, Tech: tc,
		ExpectDICRules:  nil,
		ExpectFlatRules: []string{"FLAT.S.ND"},
		FlatFalse:       true,
		Notes:           "same-net spacing is unnecessary; the baseline has no nets and flags it",
	}
}

// Figure5ResistorException builds a diffusion resistor with a same-net
// wire folded back 2λ from its body. Even on the same net the spacing must
// be checked — a short across the body changes the circuit — so here the
// DIC must flag while the same-net exemption would have hidden it.
func Figure5ResistorException() Pathology {
	tc := tech.NMOS()
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("fig5b")
	res := device.NewDiffResistor(d, tc, "r", 2000) // body [0,0]-[2000,500]
	top := d.MustSymbol("top")
	top.AddCall(res, geom.Identity, "r1")
	// Wire from the b end, folded back over the body at 500 gap (rule 750).
	top.AddWire(diffL, 500, "",
		geom.Pt(1750, 250), geom.Pt(3500, 250), geom.Pt(3500, 1250), geom.Pt(500, 1250))
	d.Top = top
	return Pathology{
		Name: "resistor-same-net-spacing", Figure: "Figure 5b",
		Design: d, Tech: tc,
		ExpectDICRules: []string{"S.ND.ND"},
		Notes:          "resistors are NOT same-net exempt; a short across the body is critical",
	}
}

// Figure6DeviceDependentRules builds the bipolar pair: a transistor whose
// base is touched by isolation (error) and a base resistor tied to
// isolation (legal ground tie).
func Figure6DeviceDependentRules() (errCase, okCase Pathology) {
	mk := func(name string, useNPN bool) Pathology {
		tc := tech.Bipolar()
		isoL, _ := tc.LayerByName(tech.BipIso)
		d := layout.NewDesign(name)
		top := d.MustSymbol("top")
		var expect []string
		if useNPN {
			q := device.NewNPN(d, tc, "q")
			top.AddCall(q, geom.Identity, "q1")
			// Isolation wire abutting the base (base is [0,800]²).
			top.AddWire(isoL, 400, "", geom.Pt(800, 400), geom.Pt(3000, 400))
			expect = []string{"DEV.NPN.ISO"}
		} else {
			r := device.NewBaseResistor(d, tc, "r", 1000) // body [0,1000]x[0,400]
			top.AddCall(r, geom.Identity, "r1")
			top.AddWire(isoL, 400, "", geom.Pt(1000, 200), geom.Pt(3000, 200))
		}
		d.Top = top
		return Pathology{
			Name: name, Figure: "Figure 6",
			Design: d, Tech: tc,
			ExpectDICRules: expect,
			Notes:          "identical geometry, different device: only the transistor case is an error",
		}
	}
	return mk("npn-base-isolation-short", true), mk("resistor-isolation-tie", false)
}

// Figure7ContactVsButting builds a transistor with a contact cut on its
// gate (error) and a legal butting contact. The DIC flags only the former;
// the baseline's mask rule flags both.
func Figure7ContactVsButting() Pathology {
	tc := tech.NMOS()
	cutL, _ := tc.LayerByName(tech.NMOSContact)
	d := layout.NewDesign("fig7")
	tr := device.NewEnhTransistor(d, tc, "t", 500, 500)
	bc := device.NewButtingContact(d, tc, "b")
	top := d.MustSymbol("top")
	top.AddCall(tr, geom.Identity, "t1")
	top.AddCall(bc, geom.Translate(geom.Pt(6000, 0)), "b1")
	// Interconnect cut landing on t1's channel.
	top.AddBox(cutL, geom.R(-250, -250, 250, 250), "")
	d.Top = top
	return Pathology{
		Name: "contact-over-gate-vs-butting", Figure: "Figure 7",
		Design: d, Tech: tc,
		ExpectDICRules:  []string{"DEV.GATE.CONTACT"},
		ExpectFlatRules: []string{"FLAT.GATECONTACT"},
		FlatFalse:       true, // the baseline also flags the butting contact
		Notes:           "the DIC reports one error; the baseline reports two, one of them false",
	}
}

// Figure8AccidentalTransistor builds an intentional transistor next to an
// accidental poly-diffusion crossing. The DIC flags the accidental one;
// the baseline flags neither.
func Figure8AccidentalTransistor() Pathology {
	tc := tech.NMOS()
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("fig8")
	tr := device.NewEnhTransistor(d, tc, "t", 500, 500)
	top := d.MustSymbol("top")
	top.AddCall(tr, geom.Identity, "t1")
	// Accidental crossing far from the device.
	top.AddWire(diffL, 500, "", geom.Pt(5000, 0), geom.Pt(9000, 0))
	top.AddWire(polyL, 500, "", geom.Pt(7000, -2000), geom.Pt(7000, 2000))
	d.Top = top
	return Pathology{
		Name: "accidental-transistor", Figure: "Figure 8",
		Design: d, Tech: tc,
		ExpectDICRules: []string{"DEV.ACCIDENTAL"},
		FlatMisses:     true,
		Notes:          "the baseline accepts the crossing because it forms a legal transistor",
	}
}

// Figure15SelfSufficiency builds two legal-width boxes overlapping a
// quarter width: a shallow, non-skeletal connection. The union is legal
// geometry; the construction is not.
func Figure15SelfSufficiency() Pathology {
	tc := tech.NMOS()
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("fig15")
	top := d.MustSymbol("top")
	top.AddBox(diffL, geom.R(0, 0, 2000, 500), "")
	top.AddBox(diffL, geom.R(1875, 0, 3875, 500), "")
	d.Top = top
	return Pathology{
		Name: "shallow-overlap", Figure: "Figure 15 / Figure 11 (right)",
		Design: d, Tech: tc,
		ExpectDICRules: []string{"CONN.ILLEGAL"},
		FlatMisses:     true,
		Notes:          "overlap by at least the minimum width; hierarchical checking depends on it",
	}
}

// AllPathologies returns every pathology case for table-style experiments.
func AllPathologies() []Pathology {
	fig6err, fig6ok := Figure6DeviceDependentRules()
	return []Pathology{
		Figure2LegalFiguresIllegalComposite(),
		Figure2NarrowFiguresLegalComposite(),
		Figure5ElectricalEquivalence(),
		Figure5ResistorException(),
		fig6err,
		fig6ok,
		Figure7ContactVsButting(),
		Figure8AccidentalTransistor(),
		Figure15SelfSufficiency(),
	}
}
