// Command dicheckd is the concurrent DRC check service: a long-running
// HTTP/JSON daemon over the incremental check engine. Each named session
// owns one design and one engine; edits stream in over HTTP, rapid bursts
// are debounced into single rechecks, and reports come back
// fingerprint-identical to an offline Recheck replaying the same edits.
//
// Usage:
//
//	dicheckd [flags]
//
//	-addr HOST:PORT    listen address (default 127.0.0.1:8347; port 0
//	                   picks a free port)
//	-addr-file FILE    write the bound address to FILE once listening
//	                   (how scripts find a port-0 daemon)
//	-max-sessions N    LRU cap on live sessions (default 64)
//	-idle D            evict sessions idle longer than D (default 30m)
//	-debounce D        edit-coalescing window before a background recheck
//	                   (default 25ms)
//	-workers N         engine interaction-stage goroutines (0 = all cores)
//
// Endpoints (all JSON):
//
//	POST   /sessions               create a session {name, cif, tech|deck, ...}
//	GET    /sessions               list sessions
//	POST   /sessions/{id}/edits    apply an edit batch {edits: [...]}
//	GET    /sessions/{id}/report   current report (flushes pending edits)
//	GET    /sessions/{id}/stats    service + engine counters
//	DELETE /sessions/{id}          drop a session
//	GET    /healthz                liveness probe
//
// See the README's "Check service" section for the session lifecycle and
// an example curl transcript.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	maxSessions := flag.Int("max-sessions", 64, "LRU cap on live sessions")
	idle := flag.Duration("idle", 30*time.Minute, "evict sessions idle longer than this")
	debounce := flag.Duration("debounce", 25*time.Millisecond, "edit-coalescing window before a background recheck")
	workers := flag.Int("workers", 0, "engine interaction-stage goroutines (0 = all cores)")
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dicheckd: listen: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dicheckd: addr-file: %v\n", err)
			return 1
		}
	}
	fmt.Printf("dicheckd listening on http://%s\n", bound)

	srv := server.New(server.Config{
		MaxSessions: *maxSessions,
		IdleTTL:     *idle,
		Debounce:    *debounce,
		Workers:     *workers,
	})
	hs := &http.Server{Handler: srv}

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("dicheckd: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		srv.Close()
		return 0
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "dicheckd: serve: %v\n", err)
			srv.Close()
			return 1
		}
	}
	srv.Close()
	return 0
}
