package workload

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// BipolarChip is the Figure 6 scenario at scale: n transistor/resistor
// pairs over a shared isolation frame, with every resistor legally tied to
// isolation and every transistor base kept clear of it.
type BipolarChip struct {
	Design *layout.Design
	Tech   *tech.Technology
	N      int
}

// Horizontal pitch between transistor/resistor pairs.
const bipPitch = 4000

// NewBipolarChip builds the clean bipolar workload:
//
//   - npn transistors at y=0 (base 800×800, emitter inside),
//   - base-diffusion resistors at y=3000,
//   - an isolation frame along the bottom with one tongue per pair rising
//     to touch the resistor's far end — the legal ground tie of Figure 6b,
//     routed well clear of every transistor base.
func NewBipolarChip(tc *tech.Technology, name string, n int) *BipolarChip {
	isoL, _ := tc.LayerByName(tech.BipIso)
	d := layout.NewDesign(name)

	q := device.NewNPN(d, tc, "lib.npn")
	r := device.NewBaseResistor(d, tc, "lib.res", 1000)

	pair := d.MustSymbol("pair")
	pair.AddCall(q, geom.Identity, "q")
	pair.AddCall(r, geom.Translate(geom.Pt(2000, 3000)), "r")
	// Isolation tongue up to the resistor's b end (x 2600..3000 covers the
	// end cap), 1800 clear of this pair's base and 1000 of the next.
	pair.AddWire(isoL, 400, "ISO", geom.Pt(2800, -1600), geom.Pt(2800, 3200))

	top := d.MustSymbol("top")
	for i := 0; i < n; i++ {
		top.AddCall(pair, geom.Translate(geom.Pt(int64(i)*bipPitch, 0)), fmt.Sprintf("p%d", i))
	}
	// Isolation frame along the bottom, connecting all tongues.
	top.AddWire(isoL, 800, "ISO",
		geom.Pt(-1000, -1600), geom.Pt(int64(n-1)*bipPitch+3400, -1600))
	d.Top = top
	return &BipolarChip{Design: d, Tech: tc, N: n}
}

// BreakIsolation moves one extra isolation wire against the i-th
// transistor's base — the Figure 6a integrity error — and returns its
// ground-truth location.
func (b *BipolarChip) BreakIsolation(i int) geom.Rect {
	isoL, _ := b.Tech.LayerByName(tech.BipIso)
	x := int64(i) * bipPitch
	// Abuts the base's right edge (base spans x..x+800, y 0..800).
	b.Design.Top.AddWire(isoL, 400, "",
		geom.Pt(x+800, 400), geom.Pt(x+1400, 400))
	return geom.R(x+600, 0, x+1800, 800)
}
