package workload

import (
	"repro/internal/geom"
	"repro/internal/tech"
)

// Ground-truth breakers for the geometric layer-rule classes. Each plants
// one minimal defect in the empty lane east of the i-th column's pullup
// (row 0) and returns its location in chip coordinates. The placements are
// derived so that exactly one violation of the target class appears and
// none of the other layer-rule classes fire — spacing and device side
// effects inherent to the defect (an accidental transistor under a bad
// gate, say) are part of the ground truth a real checker would report and
// are asserted separately by the tests.
//
// Metal probes are declared on the GND net (suppressing the floating-net
// fanout complaint) and placed a full 3λ clear of every neighbouring
// cell's metal.

// BreakRuleWidth adds a 300-wide diffusion wire (rule: 2λ = 500) east of
// the i-th cell. Both the per-element W.ND check and the merged-region
// WIDTH.ND kernel must flag it.
func (c *Chip) BreakRuleWidth(i int) geom.Rect {
	diffL, _ := c.Lib.Tech.LayerByName(tech.NMOSDiff)
	x := int64(i) * PitchX
	c.Design.Top.AddWire(diffL, 300, "", geom.Pt(x+5000, 1500), geom.Pt(x+5000, 2500))
	return geom.R(x+4850, 1350, x+5150, 2650)
}

// BreakRuleArea adds a 750×800 floating metal island: both dimensions meet
// the 3λ width rule, but the 600000 sq-centimicron area is under the
// 10λ² = 625000 minimum, so only the AREA.NM kernel can catch it.
func (c *Chip) BreakRuleArea(i int) geom.Rect {
	metalL, _ := c.Lib.Tech.LayerByName(tech.NMOSMetal)
	x := int64(i) * PitchX
	where := geom.R(x+4750, 1350, x+5500, 2150)
	c.Design.Top.AddBox(metalL, where, "GND")
	return where
}

// BreakRuleEnclosure adds a contact cut whose metal pad covers it with
// the required 1λ margin on three sides but stops 125 short on the east —
// an under-enclosed contact only the ENC.NM.NC kernel sees. The returned
// rect is the uncovered sliver.
func (c *Chip) BreakRuleEnclosure(i int) geom.Rect {
	tc := c.Lib.Tech
	cutL, _ := tc.LayerByName(tech.NMOSContact)
	metalL, _ := tc.LayerByName(tech.NMOSMetal)
	x := int64(i) * PitchX
	c.Design.Top.AddBox(cutL, geom.R(x+4750, 1550, x+5250, 2050), "")
	c.Design.Top.AddBox(metalL, geom.R(x+4500, 1300, x+5375, 2300), "GND")
	return geom.R(x+5125, 1550, x+5250, 2050)
}

// BreakRuleOverlap crosses a diffusion wire 250 into a poly block: the
// gate channel is only 1λ wide against the 2λ overlap rule, so OVL.NP.ND
// must flag the thin crossing (and, the crossing being a transistor no
// symbol declares, DEV.ACCIDENTAL fires alongside — that is the ground
// truth of the defect, not a false error). The returned rect is the thin
// channel.
func (c *Chip) BreakRuleOverlap(i int) geom.Rect {
	tc := c.Lib.Tech
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	x := int64(i) * PitchX
	c.Design.Top.AddWire(diffL, 500, "", geom.Pt(x+4600, 1500), geom.Pt(x+5400, 1500))
	c.Design.Top.AddBox(polyL, geom.R(x+5400, 750, x+6150, 2250), "")
	return geom.R(x+5400, 1250, x+5650, 1750)
}

// BreakRuleExtension crosses a poly wire over a diffusion wire with a full
// 2λ channel (the overlap rule passes) but ends the poly flush with the
// channel's north edge instead of extending 2λ past it — the short gate
// extension of Figure 8, caught by EXT.NP.ND (and by DEV.ACCIDENTAL, the
// crossing being undeclared). The returned rect is the missing extension.
func (c *Chip) BreakRuleExtension(i int) geom.Rect {
	tc := c.Lib.Tech
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	x := int64(i) * PitchX
	c.Design.Top.AddWire(diffL, 500, "", geom.Pt(x+4300, 1500), geom.Pt(x+5700, 1500))
	c.Design.Top.AddWire(polyL, 500, "", geom.Pt(x+5000, 1000), geom.Pt(x+5000, 1750))
	return geom.R(x+4750, 2000, x+5250, 2250)
}
