package netlist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/tech"
)

// ConstructionRules checks the paper's four non-geometric composition rules
// on an extracted netlist:
//
//  1. a net must have at least two "devices" on it,
//  2. power and ground must not be shorted,
//  3. a "bus" may not connect to power or ground,
//  4. a depletion device may not connect to ground.
//
// Bus nets are recognized by declared names beginning with "bus" (case
// insensitive), e.g. "bus0", "BUS_data".
func ConstructionRules(nl *Netlist, tc *tech.Technology) []Issue {
	var issues []Issue
	for i := range nl.Nets {
		net := &nl.Nets[i]
		power, ground, bus := false, false, false
		for _, n := range net.Declared {
			base := lastComponent(n)
			if tc.IsPower(base) {
				power = true
			}
			if tc.IsGround(base) {
				ground = true
			}
			if isBusName(base) {
				bus = true
			}
		}
		// Rule 2: power-ground short.
		if power && ground {
			issues = append(issues, Issue{
				Rule:   "NET.PGSHORT",
				Detail: fmt.Sprintf("power and ground shorted on net %q (%v)", net.Name, net.Declared),
				Where:  net.Bounds,
			})
		}
		// Rule 3: bus to rail.
		if bus && (power || ground) {
			issues = append(issues, Issue{
				Rule:   "NET.BUSRAIL",
				Detail: fmt.Sprintf("bus net %q connects to a supply rail (%v)", net.Name, net.Declared),
				Where:  net.Bounds,
			})
		}
		// Rule 1: fanout — every non-rail net needs at least two device
		// terminals; a zero-terminal net is floating interconnect.
		if !power && !ground && len(net.Terminals) < 2 {
			issues = append(issues, Issue{
				Rule: "NET.FANOUT",
				Detail: fmt.Sprintf("net %q has %d device terminal(s), need at least 2",
					net.Name, len(net.Terminals)),
				Where: net.Bounds,
			})
		}
	}
	// Rule 4: depletion device to ground. Which device types count is deck
	// data (the depletion attribute) — in the shipped nMOS process, the
	// bare depletion transistor and the depletion pullup.
	for di := range nl.Devices {
		dev := &nl.Devices[di]
		if spec, ok := tc.Device(dev.Type); !ok || !spec.Depletion {
			continue
		}
		for ti := range dev.TerminalNets {
			term, nid := dev.TerminalNets[ti].Name, dev.TerminalNets[ti].Net
			if term == "g" {
				continue // the gate is tied back to the source by design
			}
			for _, n := range nl.Nets[nid].Declared {
				if tc.IsGround(lastComponent(n)) {
					issues = append(issues, Issue{
						Rule: "NET.DEPGND",
						Detail: fmt.Sprintf("depletion device %s terminal %q connects to ground",
							devName(dev), term),
						Where: nl.Nets[nid].Bounds,
					})
				}
			}
		}
	}
	sortIssues(issues)
	return issues
}

func devName(d *DeviceUse) string {
	if d.Path == "" {
		return d.Symbol.Name
	}
	return d.Path
}

// lastComponent strips the dot-notation path from a qualified net name.
func lastComponent(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func isBusName(name string) bool {
	return len(name) >= 3 && strings.EqualFold(name[:3], "bus")
}

func sortIssues(issues []Issue) {
	sort.Slice(issues, func(i, j int) bool {
		if issues[i].Rule != issues[j].Rule {
			return issues[i].Rule < issues[j].Rule
		}
		return issues[i].Detail < issues[j].Detail
	})
}

// Reference is an expected netlist for consistency checking: declared net
// name to the multiset of expected device attachments, each written
// "deviceType:terminal".
type Reference map[string][]string

// Signature returns the sorted device attachments of a net, in the
// Reference's "deviceType:terminal" notation.
func (nl *Netlist) Signature(id NetID) []string {
	net := &nl.Nets[id]
	out := make([]string, 0, len(net.Terminals))
	for _, tr := range net.Terminals {
		out = append(out, nl.Devices[tr.Device].Type+":"+tr.Terminal)
	}
	sort.Strings(out)
	return out
}

// Compare checks the extracted netlist against a reference: every
// referenced net must exist and carry exactly the expected attachments.
// This is the paper's "check the net list against an input net list for
// consistency".
func Compare(nl *Netlist, ref Reference) []Issue {
	var issues []Issue
	names := make([]string, 0, len(ref))
	for name := range ref {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := append([]string(nil), ref[name]...)
		sort.Strings(want)
		id, ok := nl.NetByName(name)
		if !ok {
			issues = append(issues, Issue{
				Rule:   "NET.MISSING",
				Detail: fmt.Sprintf("reference net %q not found in layout", name),
			})
			continue
		}
		got := nl.Signature(id)
		if !equalStrings(got, want) {
			issues = append(issues, Issue{
				Rule:   "NET.MISMATCH",
				Detail: fmt.Sprintf("net %q: layout has %v, reference wants %v", name, got, want),
				Where:  nl.Nets[id].Bounds,
			})
		}
	}
	return issues
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
