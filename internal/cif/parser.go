package cif

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Parse reads extended CIF text into a layout.Design, resolving layer names
// through the technology. If the file has top-level content (elements or
// calls outside any DS/DF), it becomes the top symbol; otherwise the last
// defined symbol is the top, matching common CIF practice.
func Parse(src string, tc *tech.Technology, designName string) (*layout.Design, error) {
	cmds, err := splitCommands(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		tech:         tc,
		design:       layout.NewDesign(designName),
		byNum:        make(map[int]*layout.Symbol),
		pendingByNum: make(map[int][]*pendingCall),
	}
	p.topSym = &layout.Symbol{Name: "(top)"}
	for i, cmd := range cmds {
		if cmd == "" {
			continue
		}
		if err := p.command(cmd); err != nil {
			if se, ok := err.(*SyntaxError); ok {
				se.Command = i + 1
				se.Text = cmd
				return nil, se
			}
			return nil, &SyntaxError{Command: i + 1, Text: cmd, Msg: err.Error()}
		}
		if p.ended {
			break
		}
	}
	if p.cur != nil {
		return nil, fmt.Errorf("cif: unterminated symbol definition %d", p.curNum)
	}
	if len(p.pendingAll) > 0 {
		return nil, fmt.Errorf("cif: call to undefined symbol %d", p.pendingAll[0].num)
	}
	return p.finish()
}

// pendingCall records a forward-referenced C command.
type pendingCall struct {
	num  int
	from *layout.Symbol
	t    geom.Transform
	name string
}

type parser struct {
	tech   *tech.Technology
	design *layout.Design

	byNum        map[int]*layout.Symbol
	pendingByNum map[int][]*pendingCall
	pendingAll   []*pendingCall

	topSym     *layout.Symbol
	topUsed    bool
	cur        *layout.Symbol
	curNum     int
	scaleNum   int64
	scaleDen   int64
	curLayer   tech.LayerID
	layerSet   bool
	pendingNet string
	pendingIns string
	lastDef    *layout.Symbol
	ended      bool
}

func (p *parser) target() *layout.Symbol {
	if p.cur != nil {
		return p.cur
	}
	p.topUsed = true
	return p.topSym
}

// scale applies the DS distance scale a/b exactly.
func (p *parser) scale(v int64) (int64, error) {
	if p.cur == nil || p.scaleNum == p.scaleDen {
		return v, nil
	}
	n := v * p.scaleNum
	if n%p.scaleDen != 0 {
		return 0, fmt.Errorf("distance %d not divisible under scale %d/%d", v, p.scaleNum, p.scaleDen)
	}
	return n / p.scaleDen, nil
}

func (p *parser) command(cmd string) error {
	switch c := cmd[0]; {
	case c == 'D' || c == 'd':
		rest := strings.TrimSpace(cmd[1:])
		if rest == "" {
			return &SyntaxError{Msg: "bare D command"}
		}
		switch rest[0] {
		case 'S', 's':
			return p.defStart(fields(rest[1:]))
		case 'F', 'f':
			return p.defFinish()
		case 'D', 'd':
			return nil // DD (delete definitions) ignored
		}
		return &SyntaxError{Msg: "unknown D command"}
	case c == 'C' || c == 'c':
		return p.call(fields(cmd[1:]))
	case c == 'B' || c == 'b':
		return p.box(fields(cmd[1:]))
	case c == 'W' || c == 'w':
		return p.wire(fields(cmd[1:]))
	case c == 'P' || c == 'p':
		return p.polygon(fields(cmd[1:]))
	case c == 'L' || c == 'l':
		return p.layer(fields(cmd[1:]))
	case c == 'R' || c == 'r':
		return &SyntaxError{Msg: "round flash elements are not supported"}
	case c == 'E' || c == 'e':
		p.ended = true
		return nil
	case c == '9':
		return p.extension(cmd)
	case c >= '0' && c <= '8':
		return nil // other user extensions ignored
	}
	return &SyntaxError{Msg: "unknown command"}
}

func (p *parser) defStart(f []string) error {
	if p.cur != nil {
		return &SyntaxError{Msg: "nested DS"}
	}
	if len(f) < 1 {
		return &SyntaxError{Msg: "DS needs a symbol number"}
	}
	num, err := strconv.Atoi(f[0])
	if err != nil || num < 0 {
		return &SyntaxError{Msg: "bad symbol number"}
	}
	if _, dup := p.byNum[num]; dup {
		return &SyntaxError{Msg: fmt.Sprintf("symbol %d redefined", num)}
	}
	p.scaleNum, p.scaleDen = 1, 1
	if len(f) >= 3 {
		a, err1 := strconv.ParseInt(f[1], 10, 64)
		b, err2 := strconv.ParseInt(f[2], 10, 64)
		if err1 != nil || err2 != nil || a <= 0 || b <= 0 {
			return &SyntaxError{Msg: "bad DS scale"}
		}
		p.scaleNum, p.scaleDen = a, b
	}
	sym, err := p.design.NewSymbol(fmt.Sprintf("S%d", num))
	if err != nil {
		return err
	}
	p.byNum[num] = sym
	p.cur = sym
	p.curNum = num
	p.layerSet = false
	p.pendingNet = ""
	p.pendingIns = ""

	// Resolve forward references to this symbol.
	for _, pc := range p.pendingByNum[num] {
		pc.from.AddCall(sym, pc.t, pc.name)
		p.removePending(pc)
	}
	delete(p.pendingByNum, num)
	return nil
}

func (p *parser) removePending(pc *pendingCall) {
	for i, v := range p.pendingAll {
		if v == pc {
			p.pendingAll = append(p.pendingAll[:i], p.pendingAll[i+1:]...)
			return
		}
	}
}

func (p *parser) defFinish() error {
	if p.cur == nil {
		return &SyntaxError{Msg: "DF outside definition"}
	}
	p.lastDef = p.cur
	p.cur = nil
	p.pendingNet = ""
	p.pendingIns = ""
	return nil
}

func (p *parser) call(f []string) error {
	if len(f) < 1 {
		return &SyntaxError{Msg: "C needs a symbol number"}
	}
	num, err := strconv.Atoi(f[0])
	if err != nil {
		return &SyntaxError{Msg: "bad call symbol number"}
	}
	t, err := parseTransform(f[1:])
	if err != nil {
		return err
	}
	name := p.pendingIns
	p.pendingIns = ""
	from := p.target()
	if sym, ok := p.byNum[num]; ok {
		from.AddCall(sym, t, name)
		return nil
	}
	pc := &pendingCall{num: num, from: from, t: t, name: name}
	p.pendingByNum[num] = append(p.pendingByNum[num], pc)
	p.pendingAll = append(p.pendingAll, pc)
	return nil
}

// parseTransform folds a CIF transform item list (applied in order) into a
// single Manhattan transform.
func parseTransform(f []string) (geom.Transform, error) {
	total := geom.Identity
	i := 0
	num := func() (int64, error) {
		if i >= len(f) {
			return 0, fmt.Errorf("transform list truncated")
		}
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad transform number %q", f[i])
		}
		i++
		return v, nil
	}
	for i < len(f) {
		item := f[i]
		i++
		switch item {
		case "T", "t":
			x, err := num()
			if err != nil {
				return total, err
			}
			y, err := num()
			if err != nil {
				return total, err
			}
			total = total.Compose(geom.Translate(geom.Pt(x, y)))
		case "M", "m":
			if i >= len(f) {
				return total, fmt.Errorf("M needs an axis")
			}
			axis := f[i]
			i++
			switch axis {
			case "X", "x":
				// CIF "M X": mirror in X direction = negate x coordinates.
				total = total.Compose(geom.NewTransform(geom.MX180, geom.Pt(0, 0)))
			case "Y", "y":
				// CIF "M Y": negate y coordinates.
				total = total.Compose(geom.NewTransform(geom.MX, geom.Pt(0, 0)))
			default:
				return total, fmt.Errorf("bad mirror axis %q", axis)
			}
		case "R", "r":
			a, err := num()
			if err != nil {
				return total, err
			}
			b, err := num()
			if err != nil {
				return total, err
			}
			o, ok := axialRotation(a, b)
			if !ok {
				return total, fmt.Errorf("non-Manhattan rotation vector (%d,%d)", a, b)
			}
			total = total.Compose(geom.NewTransform(o, geom.Pt(0, 0)))
		default:
			return total, fmt.Errorf("unknown transform item %q", item)
		}
	}
	return total, nil
}

// axialRotation maps a CIF rotation direction vector to an orientation.
func axialRotation(a, b int64) (geom.Orient, bool) {
	switch {
	case a > 0 && b == 0:
		return geom.R0, true
	case a == 0 && b > 0:
		return geom.R90, true
	case a < 0 && b == 0:
		return geom.R180, true
	case a == 0 && b < 0:
		return geom.R270, true
	}
	return geom.R0, false
}

func (p *parser) nums(f []string) ([]int64, error) {
	out := make([]int64, len(f))
	for i, s := range f {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, &SyntaxError{Msg: fmt.Sprintf("bad number %q", s)}
		}
		sv, err := p.scale(v)
		if err != nil {
			return nil, &SyntaxError{Msg: err.Error()}
		}
		out[i] = sv
	}
	return out, nil
}

func (p *parser) needLayer() error {
	if !p.layerSet {
		return &SyntaxError{Msg: "element before any L command"}
	}
	return nil
}

func (p *parser) takeNet() string {
	n := p.pendingNet
	p.pendingNet = ""
	return n
}

func (p *parser) box(f []string) error {
	if err := p.needLayer(); err != nil {
		return err
	}
	if len(f) != 4 && len(f) != 6 {
		return &SyntaxError{Msg: "B needs w h cx cy [dx dy]"}
	}
	v, err := p.nums(f)
	if err != nil {
		return err
	}
	w, h, cx, cy := v[0], v[1], v[2], v[3]
	if len(v) == 6 {
		dx, dy := v[4], v[5]
		switch {
		case dx != 0 && dy == 0:
			// 0° or 180° rotation leaves a box unchanged.
		case dx == 0 && dy != 0:
			w, h = h, w // 90° or 270° rotation swaps extents
		default:
			return &SyntaxError{Msg: "non-Manhattan box direction"}
		}
	}
	if w <= 0 || h <= 0 {
		return &SyntaxError{Msg: "box extents must be positive"}
	}
	r := geom.Rect{X1: cx - w/2, Y1: cy - h/2, X2: cx - w/2 + w, Y2: cy - h/2 + h}
	p.target().AddBox(p.curLayer, r, p.takeNet())
	return nil
}

func (p *parser) wire(f []string) error {
	if err := p.needLayer(); err != nil {
		return err
	}
	if len(f) < 3 || len(f)%2 == 0 {
		return &SyntaxError{Msg: "W needs width followed by point pairs"}
	}
	v, err := p.nums(f)
	if err != nil {
		return err
	}
	width := v[0]
	if width <= 0 {
		return &SyntaxError{Msg: "wire width must be positive"}
	}
	pts := make([]geom.Point, 0, (len(v)-1)/2)
	for i := 1; i+1 < len(v); i += 2 {
		pts = append(pts, geom.Pt(v[i], v[i+1]))
	}
	p.target().AddWire(p.curLayer, width, p.takeNet(), pts...)
	return nil
}

func (p *parser) polygon(f []string) error {
	if err := p.needLayer(); err != nil {
		return err
	}
	if len(f) < 6 || len(f)%2 != 0 {
		return &SyntaxError{Msg: "P needs at least three point pairs"}
	}
	v, err := p.nums(f)
	if err != nil {
		return err
	}
	poly := make(geom.Polygon, 0, len(v)/2)
	for i := 0; i+1 < len(v); i += 2 {
		poly = append(poly, geom.Pt(v[i], v[i+1]))
	}
	p.target().AddPolygon(p.curLayer, poly, p.takeNet())
	return nil
}

func (p *parser) layer(f []string) error {
	if len(f) != 1 {
		return &SyntaxError{Msg: "L needs one layer name"}
	}
	id, ok := p.tech.LayerByCIF(f[0])
	if !ok {
		return &SyntaxError{Msg: fmt.Sprintf("unknown layer %q in technology %s", f[0], p.tech.Name)}
	}
	p.curLayer = id
	p.layerSet = true
	return nil
}

func (p *parser) extension(cmd string) error {
	rest := strings.TrimSpace(cmd[1:])
	if rest == "" {
		return &SyntaxError{Msg: "empty 9 extension"}
	}
	switch rest[0] {
	case 'N', 'n':
		f := fields(rest[1:])
		if len(f) != 1 {
			return &SyntaxError{Msg: "9N needs one net name"}
		}
		p.pendingNet = f[0]
		return nil
	case 'D', 'd':
		f := fields(rest[1:])
		if len(f) < 1 || len(f) > 2 {
			return &SyntaxError{Msg: "9D needs a device type and optional CHK"}
		}
		if p.cur == nil {
			return &SyntaxError{Msg: "9D outside symbol definition"}
		}
		p.cur.DeviceType = f[0]
		if len(f) == 2 {
			if !strings.EqualFold(f[1], "CHK") {
				return &SyntaxError{Msg: "9D flag must be CHK"}
			}
			p.cur.Checked = true
		}
		return nil
	case 'I', 'i':
		f := fields(rest[1:])
		if len(f) != 1 {
			return &SyntaxError{Msg: "9I needs one instance name"}
		}
		p.pendingIns = f[0]
		return nil
	default:
		// Standard symbol-name extension: "9 name".
		f := fields(rest)
		if len(f) != 1 {
			return &SyntaxError{Msg: "9 needs one symbol name"}
		}
		if p.cur == nil {
			p.design.Name = f[0]
			return nil
		}
		return p.renameCurrent(f[0])
	}
}

// renameCurrent gives the symbol its declared name, keeping the SN alias
// unique in the design.
func (p *parser) renameCurrent(name string) error {
	// layout.Design does not support rename; emulate by bookkeeping: the
	// symbol keeps its registered slot but changes display name when free.
	if other, exists := p.design.Symbol(name); exists && other != p.cur {
		return &SyntaxError{Msg: fmt.Sprintf("duplicate symbol name %q", name)}
	}
	p.design.Rename(p.cur, name)
	return nil
}

// finish wires up the top symbol and validates the design.
func (p *parser) finish() (*layout.Design, error) {
	if p.topUsed && (len(p.topSym.Elements) > 0 || len(p.topSym.Calls) > 0) {
		top, err := p.design.NewSymbol("(top)")
		if err != nil {
			return nil, err
		}
		// Move collected content into the registered symbol.
		for _, e := range p.topSym.Elements {
			top.AddElement(e)
		}
		for _, c := range p.topSym.Calls {
			top.AddCall(c.Target, c.T, c.Name)
		}
		p.design.Top = top
	} else if p.lastDef != nil {
		p.design.Top = p.lastDef
	} else {
		return nil, fmt.Errorf("cif: empty design")
	}
	if err := p.design.Validate(); err != nil {
		return nil, err
	}
	return p.design, nil
}
